//! Packed spectral library: hypervectors + precursor-mass index.
//!
//! An [`HvLibrary`] is the searchable form of a spectral library: one
//! [`HvPack`] whose rows are sorted by precursor neutral mass, with
//! parallel metadata arrays (mass, charge, entry id, target/decoy
//! provenance). Sorting by mass makes a precursor window a contiguous
//! row range, so both standard and open-modification search reduce to
//! a ranged sweep of the tiled distance engine
//! (see [`crate::PackedSearchEngine`]).
//!
//! Libraries come from two places:
//!
//! * a [`PeptideDatabase`] — every entry's theoretical b/y spectrum is
//!   batch-encoded through the ID-Level encoder
//!   ([`HvLibrary::from_database`]); reversed-peptide decoys flow
//!   through as decoy entries, and
//! * a clustered run's consensus hypervectors — pushed through an
//!   [`HvLibraryBuilder`], optionally with one [`shuffled_decoy`] per
//!   target so HD scores stay FDR-controllable
//!   ([`HvLibraryBuilder::push_with_shuffled_decoy`]).
//!
//! # Window convention
//!
//! [`HvLibrary::window`] uses the same **closed interval**
//! `[center − tol, center + tol]` as
//! [`PeptideDatabase::candidates`](crate::PeptideDatabase::candidates):
//! entries whose mass equals either edge are included.

use crate::PeptideDatabase;
use spechd_hdc::{BinaryHypervector, HvPack, IdLevelEncoder};
use spechd_ms::fragment::theoretical_spectrum;
use spechd_ms::Peak;
use spechd_rng::{Rng, Xoshiro256StarStar};

/// A packed, mass-sorted spectral library.
///
/// Rows of [`HvLibrary::pack`] are sorted ascending by neutral mass;
/// `masses`, `charges`, `ids` and decoy flags are parallel to the rows.
///
/// # Examples
///
/// ```
/// use spechd_search::{HvLibrary, PeptideDatabase};
/// use spechd_hdc::{EncoderConfig, IdLevelEncoder};
/// use spechd_ms::Peptide;
///
/// let targets = vec![Peptide::new("PEPTIDEK")?, Peptide::new("SAMPLER")?];
/// let db = PeptideDatabase::build(&targets);
/// let encoder = IdLevelEncoder::new(EncoderConfig::default());
/// let lib = HvLibrary::from_database(&db, &encoder, 1);
/// assert_eq!(lib.len(), db.len());
/// let w = lib.window(targets[0].monoisotopic_mass(), 0.01);
/// assert!(!w.is_empty());
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HvLibrary {
    pack: HvPack,
    masses: Vec<f64>,
    charges: Vec<u8>,
    ids: Vec<String>,
    decoys: Vec<bool>,
}

impl HvLibrary {
    /// Builds a library from a target–decoy peptide database: every
    /// entry's theoretical b/y spectrum (fragment charges up to
    /// `max_fragment_charge`) is base-peak-normalized and batch-encoded.
    /// Database entries are already mass-sorted, so row order matches
    /// [`PeptideDatabase::entries`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `max_fragment_charge == 0` (propagated from fragment
    /// generation).
    pub fn from_database(
        db: &PeptideDatabase,
        encoder: &IdLevelEncoder,
        max_fragment_charge: u8,
    ) -> Self {
        let spectra: Vec<Vec<(f64, f64)>> = db
            .entries()
            .iter()
            .map(|e| relative_peaks(&theoretical_spectrum(&e.peptide, max_fragment_charge)))
            .collect();
        let pack = encoder.encode_batch_packed(&spectra);
        let mut masses = Vec::with_capacity(db.len());
        let mut charges = Vec::with_capacity(db.len());
        let mut ids = Vec::with_capacity(db.len());
        let mut decoys = Vec::with_capacity(db.len());
        for e in db.entries() {
            masses.push(e.mass);
            // Database entries carry no precursor charge of their own.
            charges.push(0);
            ids.push(e.peptide.sequence().to_string());
            decoys.push(e.is_decoy);
        }
        Self {
            pack,
            masses,
            charges,
            ids,
            decoys,
        }
    }

    /// Number of library entries.
    pub fn len(&self) -> usize {
        self.pack.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.pack.is_empty()
    }

    /// Hypervector dimensionality shared by every entry.
    pub fn dim(&self) -> usize {
        self.pack.dim()
    }

    /// The packed hypervector rows, sorted by mass.
    pub fn pack(&self) -> &HvPack {
        &self.pack
    }

    /// Neutral mass of entry `i`.
    pub fn mass(&self, i: usize) -> f64 {
        self.masses[i]
    }

    /// All masses, ascending (parallel to the pack rows).
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Precursor charge of entry `i` (0 = unknown).
    pub fn charge(&self, i: usize) -> u8 {
        self.charges[i]
    }

    /// Identifier of entry `i` (peptide sequence or consensus id).
    pub fn id(&self, i: usize) -> &str {
        &self.ids[i]
    }

    /// Whether entry `i` is a decoy.
    pub fn is_decoy(&self, i: usize) -> bool {
        self.decoys[i]
    }

    /// Number of target (non-decoy) entries.
    pub fn target_count(&self) -> usize {
        self.decoys.iter().filter(|&&d| !d).count()
    }

    /// Number of decoy entries.
    pub fn decoy_count(&self) -> usize {
        self.decoys.iter().filter(|&&d| d).count()
    }

    /// The contiguous row range whose masses lie in the **closed**
    /// interval `[center − tol_da, center + tol_da]` (edges included —
    /// the same convention as
    /// [`PeptideDatabase::candidates`](crate::PeptideDatabase::candidates)).
    ///
    /// # Panics
    ///
    /// Panics if `center` is not finite or `tol_da` is negative, NaN,
    /// or infinite.
    pub fn window(&self, center: f64, tol_da: f64) -> std::ops::Range<usize> {
        assert!(center.is_finite(), "window center must be finite");
        assert!(
            tol_da.is_finite() && tol_da >= 0.0,
            "tolerance must be finite and non-negative"
        );
        let lo = self.masses.partition_point(|&m| m < center - tol_da);
        let hi = self.masses.partition_point(|&m| m <= center + tol_da);
        lo..hi
    }

    /// Storage footprint of the packed rows in bytes (metadata excluded).
    pub fn storage_bytes(&self) -> usize {
        self.pack.storage_bytes()
    }
}

/// Incremental [`HvLibrary`] construction from arbitrary hypervectors —
/// the consensus-spectrum path. Entries may be pushed in any mass
/// order; [`HvLibraryBuilder::build`] sorts them (stably, by mass then
/// insertion order, so equal-mass ties keep a deterministic layout).
///
/// # Examples
///
/// ```
/// use spechd_search::HvLibraryBuilder;
/// use spechd_hdc::BinaryHypervector;
///
/// let mut b = HvLibraryBuilder::new(64);
/// b.push_with_shuffled_decoy(&BinaryHypervector::ones(64), 900.0, 2, "c0", 7);
/// let lib = b.build();
/// assert_eq!(lib.len(), 2);
/// assert_eq!(lib.target_count(), 1);
/// assert_eq!(lib.decoy_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct HvLibraryBuilder {
    pack: HvPack,
    masses: Vec<f64>,
    charges: Vec<u8>,
    ids: Vec<String>,
    decoys: Vec<bool>,
}

impl HvLibraryBuilder {
    /// An empty builder for hypervectors of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self {
            pack: HvPack::new(dim),
            masses: Vec::new(),
            charges: Vec::new(),
            ids: Vec::new(),
            decoys: Vec::new(),
        }
    }

    /// Number of entries pushed so far.
    pub fn len(&self) -> usize {
        self.pack.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.pack.is_empty()
    }

    /// Appends one entry.
    ///
    /// # Panics
    ///
    /// Panics if `mass` is not finite or the hypervector's
    /// dimensionality differs from the builder's.
    pub fn push_hypervector(
        &mut self,
        hv: &BinaryHypervector,
        mass: f64,
        charge: u8,
        id: impl Into<String>,
        is_decoy: bool,
    ) {
        assert!(mass.is_finite(), "entry mass must be finite");
        self.pack.push(hv);
        self.masses.push(mass);
        self.charges.push(charge);
        self.ids.push(id.into());
        self.decoys.push(is_decoy);
    }

    /// Appends one entry from pre-packed row words (rows received off
    /// the wire or copied from another pack).
    ///
    /// # Panics
    ///
    /// Panics if `mass` is not finite, the word count differs from the
    /// pack stride, or a bit beyond `dim` is set.
    pub fn push_row_words(
        &mut self,
        words: &[u64],
        mass: f64,
        charge: u8,
        id: impl Into<String>,
        is_decoy: bool,
    ) {
        assert!(mass.is_finite(), "entry mass must be finite");
        self.pack.push_row_words(words);
        self.masses.push(mass);
        self.charges.push(charge);
        self.ids.push(id.into());
        self.decoys.push(is_decoy);
    }

    /// Appends a target entry plus its [`shuffled_decoy`] (same mass
    /// and charge, id prefixed `DECOY_`) — the entry pair that makes HD
    /// scores against a consensus library FDR-controllable.
    pub fn push_with_shuffled_decoy(
        &mut self,
        hv: &BinaryHypervector,
        mass: f64,
        charge: u8,
        id: &str,
        seed: u64,
    ) {
        self.push_hypervector(hv, mass, charge, id, false);
        self.push_hypervector(
            &shuffled_decoy(hv, seed),
            mass,
            charge,
            format!("DECOY_{id}"),
            true,
        );
    }

    /// Finalizes the library: entries are stably sorted by mass
    /// ([`f64::total_cmp`], ties keep insertion order) and the rows
    /// gathered into the final pack. Already-sorted input (the common
    /// case for bulk loads) skips the gather copy.
    pub fn build(self) -> HvLibrary {
        let n = self.masses.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| self.masses[a].total_cmp(&self.masses[b]));
        if order.iter().enumerate().all(|(i, &p)| i == p) {
            return HvLibrary {
                pack: self.pack,
                masses: self.masses,
                charges: self.charges,
                ids: self.ids,
                decoys: self.decoys,
            };
        }
        let mut pack = HvPack::with_capacity(self.pack.dim(), n);
        let mut masses = Vec::with_capacity(n);
        let mut charges = Vec::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        let mut decoys = Vec::with_capacity(n);
        for &i in &order {
            pack.push_row_words(self.pack.row(i));
            masses.push(self.masses[i]);
            charges.push(self.charges[i]);
            ids.push(self.ids[i].clone());
            decoys.push(self.decoys[i]);
        }
        HvLibrary {
            pack,
            masses,
            charges,
            ids,
            decoys,
        }
    }
}

/// Base-peak-normalizes `peaks` and encodes them: the ID-Level encoder
/// expects intensities relative to the base peak in `[0, 1]`, while raw
/// [`Peak`] lists (e.g. [`theoretical_spectrum`] output) carry absolute
/// intensities. Query spectra searched against an
/// [`HvLibrary::from_database`] library must go through this same
/// normalization to be comparable.
pub fn encode_spectrum_peaks(encoder: &IdLevelEncoder, peaks: &[Peak]) -> BinaryHypervector {
    encoder.encode(&relative_peaks(peaks))
}

fn relative_peaks(peaks: &[Peak]) -> Vec<(f64, f64)> {
    let max = peaks
        .iter()
        .map(|p| f64::from(p.intensity))
        .fold(0.0, f64::max);
    if max <= 0.0 {
        return Vec::new();
    }
    peaks
        .iter()
        .map(|p| (p.mz, f64::from(p.intensity) / max))
        .collect()
}

/// A decoy hypervector: the bits of `hv` under a seeded Fisher–Yates
/// permutation of positions. The popcount (and therefore the expected
/// distance statistics) is preserved while the placement is
/// decorrelated — the HD analogue of peak-shuffled decoy spectra used
/// by open-modification search tools.
pub fn shuffled_decoy(hv: &BinaryHypervector, seed: u64) -> BinaryHypervector {
    let dim = hv.dim();
    let mut perm: Vec<u32> = (0..dim as u32).collect();
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    for i in (1..dim).rev() {
        let j = rng.bounded_u64(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    BinaryHypervector::from_fn(dim, |i| hv.bit(perm[i] as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_hdc::EncoderConfig;
    use spechd_ms::Peptide;

    fn encoder(dim: usize) -> IdLevelEncoder {
        IdLevelEncoder::new(EncoderConfig {
            dim,
            ..EncoderConfig::default()
        })
    }

    fn random_hv(dim: usize, seed: u64) -> BinaryHypervector {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        BinaryHypervector::random(dim, &mut rng)
    }

    #[test]
    fn from_database_mirrors_entry_order() {
        let targets: Vec<Peptide> = ["PEPTIDEK", "SAMPLER", "ACDEFGHK"]
            .iter()
            .map(|s| Peptide::new(*s).unwrap())
            .collect();
        let db = PeptideDatabase::build(&targets);
        let lib = HvLibrary::from_database(&db, &encoder(256), 1);
        assert_eq!(lib.len(), db.len());
        assert_eq!(lib.dim(), 256);
        for (i, e) in db.entries().iter().enumerate() {
            assert_eq!(lib.mass(i), e.mass);
            assert_eq!(lib.id(i), e.peptide.sequence());
            assert_eq!(lib.is_decoy(i), e.is_decoy);
        }
        assert_eq!(lib.target_count(), db.target_count());
        assert!(lib.masses().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn from_database_rows_match_per_entry_encoding() {
        let targets = vec![Peptide::new("PEPTIDEK").unwrap()];
        let db = PeptideDatabase::build(&targets);
        let enc = encoder(128);
        let lib = HvLibrary::from_database(&db, &enc, 1);
        for (i, e) in db.entries().iter().enumerate() {
            let expect = encode_spectrum_peaks(&enc, &theoretical_spectrum(&e.peptide, 1));
            assert_eq!(lib.pack().hypervector(i), expect, "entry {i}");
        }
    }

    #[test]
    fn window_is_closed_on_both_edges() {
        let mut b = HvLibraryBuilder::new(64);
        for (i, &m) in [100.0, 200.0, 200.0, 300.0].iter().enumerate() {
            b.push_hypervector(&random_hv(64, i as u64), m, 2, format!("e{i}"), false);
        }
        let lib = b.build();
        // Edges exactly on entry masses are included on both sides.
        assert_eq!(lib.window(200.0, 100.0), 0..4);
        assert_eq!(lib.window(150.0, 50.0), 0..3);
        assert_eq!(lib.window(250.0, 50.0), 1..4);
        // Zero tolerance selects exact-mass entries only.
        assert_eq!(lib.window(200.0, 0.0), 1..3);
        assert_eq!(lib.window(199.0, 0.5), 1..1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn window_rejects_nan_tolerance() {
        let lib = HvLibraryBuilder::new(64).build();
        lib.window(500.0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn window_rejects_negative_tolerance() {
        let lib = HvLibraryBuilder::new(64).build();
        lib.window(500.0, -1.0);
    }

    #[test]
    fn builder_sorts_by_mass_with_stable_ties() {
        let hvs: Vec<BinaryHypervector> = (0..4).map(|i| random_hv(96, 10 + i)).collect();
        let mut b = HvLibraryBuilder::new(96);
        b.push_hypervector(&hvs[0], 300.0, 2, "late", false);
        b.push_hypervector(&hvs[1], 100.0, 2, "tie-a", false);
        b.push_hypervector(&hvs[2], 100.0, 3, "tie-b", true);
        b.push_hypervector(&hvs[3], 200.0, 2, "mid", false);
        let lib = b.build();
        let ids: Vec<&str> = (0..4).map(|i| lib.id(i)).collect();
        assert_eq!(ids, ["tie-a", "tie-b", "mid", "late"]);
        assert_eq!(lib.pack().hypervector(0), hvs[1]);
        assert_eq!(lib.pack().hypervector(1), hvs[2]);
        assert_eq!(lib.charge(1), 3);
        assert!(lib.is_decoy(1));
    }

    #[test]
    fn builder_sorted_input_round_trips() {
        let mut b = HvLibraryBuilder::new(63);
        let hvs: Vec<BinaryHypervector> = (0..3).map(|i| random_hv(63, 20 + i)).collect();
        for (i, hv) in hvs.iter().enumerate() {
            b.push_row_words(
                hv.words(),
                100.0 * (i + 1) as f64,
                1,
                format!("s{i}"),
                false,
            );
        }
        let lib = b.build();
        assert_eq!(lib.pack().to_hypervectors(), hvs);
    }

    #[test]
    #[should_panic(expected = "mass must be finite")]
    fn builder_rejects_nan_mass() {
        let mut b = HvLibraryBuilder::new(64);
        b.push_hypervector(&random_hv(64, 1), f64::NAN, 2, "x", false);
    }

    #[test]
    fn shuffled_decoy_preserves_weight_and_is_deterministic() {
        let hv = random_hv(2048, 33);
        let d1 = shuffled_decoy(&hv, 99);
        let d2 = shuffled_decoy(&hv, 99);
        assert_eq!(d1, d2, "seeded shuffle is deterministic");
        assert_eq!(d1.count_ones(), hv.count_ones(), "weight preserved");
        assert!(
            hv.hamming(&d1) > 700,
            "shuffle decorrelates placement: {}",
            hv.hamming(&d1)
        );
        assert_ne!(shuffled_decoy(&hv, 100), d1, "seed changes the shuffle");
    }

    #[test]
    fn encode_spectrum_peaks_normalizes_by_base_peak() {
        let enc = encoder(256);
        let peaks = vec![Peak::new(300.0, 500.0), Peak::new(400.0, 1000.0)];
        let relative = vec![(300.0, 0.5), (400.0, 1.0)];
        assert_eq!(encode_spectrum_peaks(&enc, &peaks), enc.encode(&relative));
        // Scaling all intensities is a no-op after normalization.
        let scaled = vec![Peak::new(300.0, 5.0), Peak::new(400.0, 10.0)];
        assert_eq!(
            encode_spectrum_peaks(&enc, &peaks),
            encode_spectrum_peaks(&enc, &scaled)
        );
        assert_eq!(
            encode_spectrum_peaks(&enc, &[]),
            BinaryHypervector::zeros(256)
        );
    }
}
