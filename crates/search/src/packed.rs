//! Packed library search: one windowed code path, two search modes.
//!
//! [`PackedSearchEngine`] scores a query hypervector against the
//! mass-sorted candidate slice of an [`HvLibrary`] with the tiled
//! [`PackedDistanceEngine`], keeping the `top_k` nearest entries:
//!
//! * **standard search** ([`PackedSearchEngine::search_standard`]) —
//!   a narrow precursor window (`precursor_tol_da`, fractions of a
//!   Dalton) selects a handful of candidates;
//! * **open-modification search** ([`PackedSearchEngine::search_open`])
//!   — a wide window (`open_window_da`, hundreds of Dalton) admits
//!   modified forms whose precursor mass is shifted; candidates are
//!   scored in `batch_rows`-sized slices of the tiled engine.
//!
//! Both are the same code path ([`PackedSearchEngine::search_window`])
//! differing only in the window half-width, so their results are
//! directly comparable — and both are **bit-identical** to the scalar
//! oracle [`scalar_search_window`] at any thread count and batch size
//! (pinned by the `packed_search_equivalence` integration suite).
//!
//! # Determinism and tie-breaks
//!
//! Hits are ordered by `(distance, library_index)` ascending: a lower
//! Hamming distance wins, and equal distances break toward the lower
//! library row. `top_k` selection uses the same key, so results are a
//! pure function of the library and query.
//!
//! # FDR
//!
//! [`HdPsm`] implements [`ScoredMatch`](crate::ScoredMatch) with
//! `score = −distance` (higher is better), so
//! [`assign_q_values`](crate::assign_q_values) /
//! [`filter_at_fdr`](crate::filter_at_fdr) apply to HD search results
//! unchanged, with decoy provenance coming from the library entries.

use crate::library::HvLibrary;
use spechd_hdc::distance::PackedDistanceEngine;
use spechd_hdc::BinaryHypervector;
use std::collections::BinaryHeap;

/// Tolerances and engine knobs for packed library search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackedSearchConfig {
    /// Standard-search precursor window half-width in Dalton.
    pub precursor_tol_da: f64,
    /// Open-modification window half-width in Dalton.
    pub open_window_da: f64,
    /// Hits kept per query.
    pub top_k: usize,
    /// Candidate rows scored per tiled-engine call; bounds the
    /// per-query distance buffer during wide-window sweeps.
    pub batch_rows: usize,
    /// Worker threads for the distance engine (0 = all cores). Results
    /// are bit-identical at any setting.
    pub threads: usize,
}

impl Default for PackedSearchConfig {
    fn default() -> Self {
        Self {
            precursor_tol_da: 0.05,
            open_window_da: 250.0,
            top_k: 5,
            batch_rows: 4096,
            threads: 0,
        }
    }
}

/// A hypervector peptide-spectrum match: one library hit for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HdPsm {
    /// Index of the query within the searched batch.
    pub query_index: usize,
    /// Row index of the matched entry in the library.
    pub library_index: usize,
    /// Hamming distance between query and entry (lower is better).
    pub distance: u16,
    /// `query_mass − entry_mass`: in open-modification search, the
    /// putative modification mass.
    pub mass_delta: f64,
    /// Whether the matched entry is a decoy.
    pub is_decoy: bool,
}

impl crate::ScoredMatch for HdPsm {
    fn score(&self) -> f64 {
        -f64::from(self.distance)
    }

    fn is_decoy(&self) -> bool {
        self.is_decoy
    }
}

/// The packed search engine. See the crate-level docs for the two
/// modes and the determinism contract.
///
/// # Examples
///
/// ```
/// use spechd_search::{HvLibraryBuilder, PackedSearchConfig, PackedSearchEngine};
/// use spechd_hdc::BinaryHypervector;
///
/// let mut b = HvLibraryBuilder::new(64);
/// b.push_hypervector(&BinaryHypervector::ones(64), 900.0, 2, "a", false);
/// b.push_hypervector(&BinaryHypervector::zeros(64), 901.0, 2, "b", false);
/// let lib = b.build();
/// let engine = PackedSearchEngine::new(PackedSearchConfig {
///     open_window_da: 10.0,
///     ..PackedSearchConfig::default()
/// });
/// let hits = engine.search_open(&lib, &BinaryHypervector::ones(64), 905.0, 0);
/// assert_eq!(hits[0].library_index, 0);
/// assert_eq!(hits[0].distance, 0);
/// assert_eq!(hits[0].mass_delta, 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct PackedSearchEngine {
    config: PackedSearchConfig,
    engine: PackedDistanceEngine,
}

impl Default for PackedSearchEngine {
    fn default() -> Self {
        Self::new(PackedSearchConfig::default())
    }
}

impl PackedSearchEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if a window is negative or non-finite, `top_k == 0`, or
    /// `batch_rows == 0`.
    pub fn new(config: PackedSearchConfig) -> Self {
        assert!(
            config.precursor_tol_da.is_finite() && config.precursor_tol_da >= 0.0,
            "precursor tolerance must be finite and non-negative"
        );
        assert!(
            config.open_window_da.is_finite() && config.open_window_da >= 0.0,
            "open window must be finite and non-negative"
        );
        assert!(config.top_k > 0, "top_k must be positive");
        assert!(config.batch_rows > 0, "batch_rows must be positive");
        let engine = PackedDistanceEngine::new().threads(config.threads);
        Self { config, engine }
    }

    /// The configuration.
    pub fn config(&self) -> &PackedSearchConfig {
        &self.config
    }

    /// Standard search: [`PackedSearchEngine::search_window`] with the
    /// narrow `precursor_tol_da` window.
    pub fn search_standard(
        &self,
        lib: &HvLibrary,
        query: &BinaryHypervector,
        query_mass: f64,
        query_index: usize,
    ) -> Vec<HdPsm> {
        self.search_window(
            lib,
            query,
            query_mass,
            query_index,
            self.config.precursor_tol_da,
        )
    }

    /// Open-modification search: [`PackedSearchEngine::search_window`]
    /// with the wide `open_window_da` window.
    pub fn search_open(
        &self,
        lib: &HvLibrary,
        query: &BinaryHypervector,
        query_mass: f64,
        query_index: usize,
    ) -> Vec<HdPsm> {
        self.search_window(
            lib,
            query,
            query_mass,
            query_index,
            self.config.open_window_da,
        )
    }

    /// The shared code path of both modes: scores every library entry
    /// whose mass lies in the closed window
    /// `[query_mass − window_da, query_mass + window_da]` in
    /// `batch_rows`-sized slices of the tiled distance engine, and
    /// returns up to `top_k` hits ordered by
    /// `(distance, library_index)` ascending.
    ///
    /// # Panics
    ///
    /// Panics if the query's dimensionality differs from the library's,
    /// `query_mass` is not finite, or `window_da` is negative or not
    /// finite.
    pub fn search_window(
        &self,
        lib: &HvLibrary,
        query: &BinaryHypervector,
        query_mass: f64,
        query_index: usize,
        window_da: f64,
    ) -> Vec<HdPsm> {
        let range = lib.window(query_mass, window_da);
        let k = self.config.top_k;
        // Max-heap of the k best (distance, index) keys seen so far:
        // the root is the current worst keeper, evicted when a strictly
        // smaller key arrives. Keys are unique (index), so selection is
        // total-order deterministic.
        let mut heap: BinaryHeap<(u16, usize)> = BinaryHeap::with_capacity(k + 1);
        let mut lo = range.start;
        while lo < range.end {
            let hi = (lo + self.config.batch_rows).min(range.end);
            let dists = self.engine.one_to_many_range(query, lib.pack(), lo..hi);
            for (off, &d) in dists.iter().enumerate() {
                let key = (d, lo + off);
                if heap.len() < k {
                    heap.push(key);
                } else if key < *heap.peek().expect("heap holds k > 0 keys") {
                    heap.pop();
                    heap.push(key);
                }
            }
            lo = hi;
        }
        heap.into_sorted_vec()
            .into_iter()
            .map(|(distance, library_index)| HdPsm {
                query_index,
                library_index,
                distance,
                mass_delta: query_mass - lib.mass(library_index),
                is_decoy: lib.is_decoy(library_index),
            })
            .collect()
    }

    /// Standard-mode search of a whole query batch; entry `i` holds the
    /// hits of `queries[i]` with `query_index == i`.
    pub fn search_batch_standard(
        &self,
        lib: &HvLibrary,
        queries: &[(BinaryHypervector, f64)],
    ) -> Vec<Vec<HdPsm>> {
        queries
            .iter()
            .enumerate()
            .map(|(i, (q, m))| self.search_standard(lib, q, *m, i))
            .collect()
    }

    /// Open-modification search of a whole query batch; entry `i` holds
    /// the hits of `queries[i]` with `query_index == i`.
    pub fn search_batch_open(
        &self,
        lib: &HvLibrary,
        queries: &[(BinaryHypervector, f64)],
    ) -> Vec<Vec<HdPsm>> {
        queries
            .iter()
            .enumerate()
            .map(|(i, (q, m))| self.search_open(lib, q, *m, i))
            .collect()
    }
}

/// The scalar per-spectrum reference scorer: materializes every
/// candidate row as an owned hypervector, scores it with the scalar
/// [`BinaryHypervector::hamming`] primitive, sorts by
/// `(distance, library_index)` and truncates to `top_k`. Slow by
/// design — it is the oracle [`PackedSearchEngine`] is proven
/// bit-identical to.
///
/// # Panics
///
/// Same contract as [`PackedSearchEngine::search_window`].
pub fn scalar_search_window(
    lib: &HvLibrary,
    query: &BinaryHypervector,
    query_mass: f64,
    query_index: usize,
    window_da: f64,
    top_k: usize,
) -> Vec<HdPsm> {
    assert!(top_k > 0, "top_k must be positive");
    let mut keys: Vec<(u16, usize)> = lib
        .window(query_mass, window_da)
        .map(|i| (query.hamming(&lib.pack().hypervector(i)) as u16, i))
        .collect();
    keys.sort_unstable();
    keys.truncate(top_k);
    keys.into_iter()
        .map(|(distance, library_index)| HdPsm {
            query_index,
            library_index,
            distance,
            mass_delta: query_mass - lib.mass(library_index),
            is_decoy: lib.is_decoy(library_index),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::HvLibraryBuilder;
    use crate::{assign_q_values, filter_at_fdr};
    use spechd_rng::{Rng, Xoshiro256StarStar};

    fn random_hv(dim: usize, rng: &mut Xoshiro256StarStar) -> BinaryHypervector {
        BinaryHypervector::random(dim, rng)
    }

    fn random_library(n: usize, dim: usize, seed: u64) -> HvLibrary {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut b = HvLibraryBuilder::new(dim);
        for i in 0..n {
            let hv = random_hv(dim, &mut rng);
            let mass = rng.range_f64(500.0, 3500.0);
            b.push_with_shuffled_decoy(&hv, mass, 2, &format!("e{i}"), seed ^ i as u64);
        }
        b.build()
    }

    #[test]
    fn planted_match_is_found_in_both_modes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut b = HvLibraryBuilder::new(2048);
        for i in 0..40 {
            b.push_hypervector(
                &random_hv(2048, &mut rng),
                900.0 + i as f64,
                2,
                format!("bg{i}"),
                false,
            );
        }
        let mut planted = random_hv(2048, &mut rng);
        b.push_hypervector(&planted, 920.0, 2, "planted", false);
        let lib = b.build();
        planted.flip_random_bits(30, &mut rng);
        let engine = PackedSearchEngine::new(PackedSearchConfig {
            precursor_tol_da: 0.5,
            open_window_da: 100.0,
            top_k: 3,
            ..PackedSearchConfig::default()
        });
        let planted_row = (0..lib.len()).find(|&i| lib.id(i) == "planted").unwrap();
        for hits in [
            engine.search_standard(&lib, &planted, 920.0, 7),
            engine.search_open(&lib, &planted, 920.0, 7),
        ] {
            assert_eq!(hits[0].library_index, planted_row);
            assert_eq!(hits[0].distance, 30);
            assert_eq!(hits[0].query_index, 7);
            assert_eq!(hits[0].mass_delta, 0.0);
        }
    }

    #[test]
    fn both_modes_match_scalar_reference() {
        let lib = random_library(60, 256, 11);
        let mut rng = Xoshiro256StarStar::seed_from_u64(77);
        let engine = PackedSearchEngine::new(PackedSearchConfig {
            precursor_tol_da: 40.0,
            open_window_da: 600.0,
            top_k: 4,
            batch_rows: 7, // force multi-batch sweeps
            threads: 2,
        });
        for qi in 0..10 {
            let q = random_hv(256, &mut rng);
            let mass = rng.range_f64(500.0, 3500.0);
            assert_eq!(
                engine.search_standard(&lib, &q, mass, qi),
                scalar_search_window(&lib, &q, mass, qi, 40.0, 4),
            );
            assert_eq!(
                engine.search_open(&lib, &q, mass, qi),
                scalar_search_window(&lib, &q, mass, qi, 600.0, 4),
            );
        }
    }

    #[test]
    fn ties_break_toward_lower_library_index() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let hv = random_hv(128, &mut rng);
        let mut b = HvLibraryBuilder::new(128);
        // Four identical rows at the same mass: all hits tie on distance.
        for i in 0..4 {
            b.push_hypervector(&hv, 1000.0, 2, format!("dup{i}"), false);
        }
        let lib = b.build();
        let engine = PackedSearchEngine::new(PackedSearchConfig {
            top_k: 3,
            ..PackedSearchConfig::default()
        });
        let hits = engine.search_standard(&lib, &hv, 1000.0, 0);
        let rows: Vec<usize> = hits.iter().map(|h| h.library_index).collect();
        assert_eq!(rows, vec![0, 1, 2]);
        assert!(hits.iter().all(|h| h.distance == 0));
    }

    #[test]
    fn empty_library_and_empty_window_yield_no_hits() {
        let lib = HvLibraryBuilder::new(64).build();
        let engine = PackedSearchEngine::default();
        let q = BinaryHypervector::zeros(64);
        assert!(engine.search_standard(&lib, &q, 1000.0, 0).is_empty());
        let lib = random_library(5, 64, 3);
        assert!(engine.search_window(&lib, &q, 100_000.0, 0, 1.0).is_empty());
    }

    #[test]
    fn fewer_candidates_than_top_k_returns_all() {
        let lib = random_library(2, 64, 9); // 4 entries with decoys
        let engine = PackedSearchEngine::new(PackedSearchConfig {
            open_window_da: 1e5,
            top_k: 100,
            ..PackedSearchConfig::default()
        });
        let q = BinaryHypervector::zeros(64);
        let hits = engine.search_open(&lib, &q, 2000.0, 0);
        assert_eq!(hits.len(), lib.len());
        assert!(hits
            .windows(2)
            .all(|w| (w[0].distance, w[0].library_index) < (w[1].distance, w[1].library_index)));
    }

    #[test]
    fn hd_psms_are_fdr_controllable() {
        // HdPsm scores rank by -distance, so q-values follow decoy
        // placement in distance order.
        let psm = |distance: u16, is_decoy: bool| HdPsm {
            query_index: 0,
            library_index: 0,
            distance,
            mass_delta: 0.0,
            is_decoy,
        };
        let matches = vec![
            psm(10, false),
            psm(20, false),
            psm(30, true),
            psm(40, false),
        ];
        let q = assign_q_values(&matches);
        assert_eq!(q[0], 0.0);
        assert_eq!(q[1], 0.0);
        assert!(q[3] > 0.0, "target below a decoy inherits its FDR");
        let accepted = filter_at_fdr(&matches, 0.01);
        assert_eq!(accepted, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "top_k must be positive")]
    fn zero_top_k_rejected() {
        PackedSearchEngine::new(PackedSearchConfig {
            top_k: 0,
            ..PackedSearchConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_window_rejected() {
        PackedSearchEngine::new(PackedSearchConfig {
            open_window_da: -1.0,
            ..PackedSearchConfig::default()
        });
    }
}
