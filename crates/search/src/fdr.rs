//! Target–decoy false-discovery-rate estimation.

/// Minimal view of a scored match needed for FDR computation; implemented
/// by [`crate::Psm`], [`crate::HdPsm`] (score = negated Hamming distance)
/// and by test doubles.
pub trait ScoredMatch {
    /// The match score (higher is better).
    fn score(&self) -> f64;
    /// Whether the match hit a decoy entry.
    fn is_decoy(&self) -> bool;
}

impl ScoredMatch for crate::Psm {
    fn score(&self) -> f64 {
        self.score
    }

    fn is_decoy(&self) -> bool {
        self.is_decoy
    }
}

/// Assigns a q-value to every match: matches are ranked by descending
/// score; at each rank the FDR estimate is `#decoys / max(#targets, 1)`;
/// q-values are the running minimum from the bottom of the list
/// (monotone non-decreasing in rank). Returns `(index, q_value)` pairs in
/// the *original* order of `matches`.
pub fn assign_q_values<M: ScoredMatch>(matches: &[M]) -> Vec<f64> {
    let n = matches.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| matches[b].score().total_cmp(&matches[a].score()));

    // Forward pass: raw FDR at each rank.
    let mut raw = vec![0.0f64; n];
    let mut decoys = 0usize;
    let mut targets = 0usize;
    for (rank, &idx) in order.iter().enumerate() {
        if matches[idx].is_decoy() {
            decoys += 1;
        } else {
            targets += 1;
        }
        raw[rank] = decoys as f64 / targets.max(1) as f64;
    }
    // Backward pass: q = min FDR at this rank or any worse rank.
    let mut running = f64::INFINITY;
    let mut q_by_rank = vec![0.0f64; n];
    for rank in (0..n).rev() {
        running = running.min(raw[rank]);
        q_by_rank[rank] = running;
    }
    // Scatter back to original order.
    let mut out = vec![0.0f64; n];
    for (rank, &idx) in order.iter().enumerate() {
        out[idx] = q_by_rank[rank];
    }
    out
}

/// Returns the indices of target matches accepted at the given FDR level
/// (decoys are never returned).
pub fn filter_at_fdr<M: ScoredMatch>(matches: &[M], fdr: f64) -> Vec<usize> {
    let q = assign_q_values(matches);
    (0..matches.len())
        .filter(|&i| !matches[i].is_decoy() && q[i] <= fdr)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        score: f64,
        decoy: bool,
    }

    impl ScoredMatch for Fake {
        fn score(&self) -> f64 {
            self.score
        }
        fn is_decoy(&self) -> bool {
            self.decoy
        }
    }

    fn fakes(spec: &[(f64, bool)]) -> Vec<Fake> {
        spec.iter()
            .map(|&(score, decoy)| Fake { score, decoy })
            .collect()
    }

    #[test]
    fn clean_separation_gives_zero_q_for_top_targets() {
        // Targets score 10..7, decoys 3..1.
        let m = fakes(&[
            (10.0, false),
            (9.0, false),
            (8.0, false),
            (3.0, true),
            (2.0, true),
        ]);
        let q = assign_q_values(&m);
        assert_eq!(q[0], 0.0);
        assert_eq!(q[1], 0.0);
        assert_eq!(q[2], 0.0);
        assert!(q[3] > 0.0);
    }

    #[test]
    fn q_values_monotone_in_rank() {
        let m = fakes(&[
            (10.0, false),
            (9.5, true),
            (9.0, false),
            (8.0, false),
            (7.0, true),
            (6.0, false),
        ]);
        let q = assign_q_values(&m);
        let mut order: Vec<usize> = (0..m.len()).collect();
        order.sort_by(|&a, &b| m[b].score.total_cmp(&m[a].score));
        let ranked: Vec<f64> = order.iter().map(|&i| q[i]).collect();
        assert!(
            ranked.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "{ranked:?}"
        );
    }

    #[test]
    fn interleaved_decoy_raises_q() {
        let m = fakes(&[(10.0, true), (9.0, false), (8.0, false)]);
        let q = assign_q_values(&m);
        // One decoy above every target: FDR estimate 1/1 then 1/2.
        assert!((q[1] - 0.5).abs() < 1e-12);
        assert!((q[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn filter_excludes_decoys_and_high_q() {
        let m = fakes(&[
            (10.0, false),
            (9.0, false),
            (5.0, true),
            (4.0, false),
            (3.0, true),
        ]);
        let accepted = filter_at_fdr(&m, 0.01);
        assert_eq!(accepted, vec![0, 1]);
        let lax = filter_at_fdr(&m, 1.0);
        assert!(!lax.contains(&2), "decoys never accepted");
        assert!(lax.contains(&3));
    }

    #[test]
    fn empty_input() {
        let m: Vec<Fake> = Vec::new();
        assert!(assign_q_values(&m).is_empty());
        assert!(filter_at_fdr(&m, 0.01).is_empty());
    }

    #[test]
    fn all_decoys() {
        let m = fakes(&[(5.0, true), (4.0, true)]);
        assert!(filter_at_fdr(&m, 0.5).is_empty());
    }

    #[test]
    fn q_values_monotone_non_increasing_walking_up_score_order() {
        // Walking DOWN the score-sorted list (best → worst) q-values
        // never decrease; equivalently, walking up they never increase.
        let m = fakes(&[
            (3.0, false),
            (12.0, false),
            (7.5, true),
            (7.5, false),
            (11.0, true),
            (9.0, false),
            (2.0, true),
            (8.0, false),
            (1.0, false),
        ]);
        let q = assign_q_values(&m);
        let mut order: Vec<usize> = (0..m.len()).collect();
        order.sort_by(|&a, &b| m[b].score.total_cmp(&m[a].score));
        let down: Vec<f64> = order.iter().map(|&i| q[i]).collect();
        assert!(down.windows(2).all(|w| w[0] <= w[1]), "{down:?}");
        let up: Vec<f64> = order.iter().rev().map(|&i| q[i]).collect();
        assert!(up.windows(2).all(|w| w[0] >= w[1]), "{up:?}");
    }

    #[test]
    fn decoy_free_input_yields_all_zero_q_values() {
        let m = fakes(&[(10.0, false), (5.0, false), (1.0, false)]);
        assert_eq!(assign_q_values(&m), vec![0.0, 0.0, 0.0]);
        assert_eq!(filter_at_fdr(&m, 0.0), vec![0, 1, 2]);
    }

    #[test]
    fn filter_threshold_boundary_is_inclusive() {
        // One decoy above two targets: both targets get q = 1/2 exactly.
        let m = fakes(&[(10.0, true), (9.0, false), (8.0, false)]);
        let q = assign_q_values(&m);
        assert_eq!(q[1], 0.5);
        assert_eq!(q[2], 0.5);
        // q == fdr is accepted (<=, not <) …
        assert_eq!(filter_at_fdr(&m, 0.5), vec![1, 2]);
        // … and anything strictly below the q-value is rejected.
        assert!(filter_at_fdr(&m, 0.5 - 1e-12).is_empty());
    }

    #[test]
    fn stricter_fdr_accepts_fewer() {
        let m = fakes(&[
            (10.0, false),
            (9.0, true),
            (8.0, false),
            (7.0, false),
            (6.0, true),
            (5.0, false),
        ]);
        let strict = filter_at_fdr(&m, 0.1).len();
        let lax = filter_at_fdr(&m, 0.9).len();
        assert!(strict <= lax);
    }
}
