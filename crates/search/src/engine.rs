//! The search engine: candidate retrieval + scoring.

use crate::score::{hyperscore, match_ions};
use crate::PeptideDatabase;
use spechd_ms::{Peptide, Spectrum};

/// Search tolerances and acceptance gates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Precursor neutral-mass tolerance in Dalton.
    pub precursor_tol_da: f64,
    /// Fragment m/z tolerance in Dalton.
    pub fragment_tol_da: f64,
    /// Minimum matched fragment ions for a PSM to be reported.
    pub min_matched_ions: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            precursor_tol_da: 0.05,
            fragment_tol_da: 0.05,
            min_matched_ions: 4,
        }
    }
}

/// A peptide-spectrum match.
#[derive(Debug, Clone, PartialEq)]
pub struct Psm {
    /// Index of the searched spectrum in the input slice.
    pub spectrum_index: usize,
    /// Best-scoring peptide.
    pub peptide: Peptide,
    /// Whether the best match was a decoy.
    pub is_decoy: bool,
    /// Hyperscore of the match.
    pub score: f64,
    /// Matched fragment-ion count.
    pub matched_ions: usize,
}

/// Database search engine.
///
/// # Examples
///
/// ```
/// use spechd_search::{PeptideDatabase, SearchConfig, SearchEngine};
/// use spechd_ms::fragment::theoretical_spectrum;
/// use spechd_ms::{Peptide, Precursor, Spectrum};
///
/// let pep: Peptide = "ACDEFGHK".parse()?;
/// let db = PeptideDatabase::build(std::slice::from_ref(&pep));
/// let engine = SearchEngine::new(db, SearchConfig::default());
/// let spectrum = Spectrum::new(
///     "q",
///     Precursor::new(pep.mz(2), 2)?,
///     theoretical_spectrum(&pep, 1),
/// )?;
/// let psm = engine.search_spectrum(&spectrum, 0).expect("hit");
/// assert_eq!(psm.peptide, pep);
/// assert!(!psm.is_decoy);
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SearchEngine {
    db: PeptideDatabase,
    config: SearchConfig,
}

impl SearchEngine {
    /// Creates an engine over a database.
    ///
    /// # Panics
    ///
    /// Panics if tolerances are non-positive.
    pub fn new(db: PeptideDatabase, config: SearchConfig) -> Self {
        assert!(
            config.precursor_tol_da > 0.0,
            "precursor tolerance must be positive"
        );
        assert!(
            config.fragment_tol_da > 0.0,
            "fragment tolerance must be positive"
        );
        Self { db, config }
    }

    /// The configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The underlying database.
    pub fn database(&self) -> &PeptideDatabase {
        &self.db
    }

    /// Searches one spectrum, returning the best PSM that clears the
    /// matched-ion gate (`None` if no candidate does).
    pub fn search_spectrum(&self, spectrum: &Spectrum, index: usize) -> Option<Psm> {
        let neutral = spectrum.precursor().neutral_mass();
        let mut best: Option<Psm> = None;
        for entry in self.db.candidates(neutral, self.config.precursor_tol_da) {
            let matched = match_ions(
                &entry.peptide,
                spectrum.peaks(),
                self.config.fragment_tol_da,
            );
            if matched.total() < self.config.min_matched_ions {
                continue;
            }
            let score = hyperscore(&matched);
            let better = match &best {
                None => true,
                Some(b) => score > b.score,
            };
            if better {
                best = Some(Psm {
                    spectrum_index: index,
                    peptide: entry.peptide.clone(),
                    is_decoy: entry.is_decoy,
                    score,
                    matched_ions: matched.total(),
                });
            }
        }
        best
    }

    /// Searches every spectrum; entry `i` corresponds to `spectra[i]`.
    pub fn search_dataset(&self, spectra: &[Spectrum]) -> Vec<Option<Psm>> {
        spectra
            .iter()
            .enumerate()
            .map(|(i, s)| self.search_spectrum(s, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::fragment::theoretical_spectrum;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
    use spechd_ms::Precursor;

    fn engine_for(gen: &SyntheticGenerator) -> SearchEngine {
        SearchEngine::new(
            PeptideDatabase::build(gen.peptide_library()),
            SearchConfig::default(),
        )
    }

    #[test]
    fn identifies_most_synthetic_spectra_correctly() {
        let gen = SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 200,
            num_peptides: 50,
            noise_spectrum_fraction: 0.0,
            hidden_label_fraction: 0.0,
            seed: 21,
            ..SyntheticConfig::default()
        });
        let ds = gen.generate();
        let engine = engine_for(&gen);
        let psms = engine.search_dataset(ds.spectra());
        let mut correct = 0;
        let mut wrong = 0;
        for (psm, label) in psms.iter().zip(ds.labels()) {
            if let (Some(p), Some(l)) = (psm, label) {
                if !p.is_decoy && p.peptide == gen.peptide_library()[*l as usize] {
                    correct += 1;
                } else {
                    wrong += 1;
                }
            }
        }
        assert!(correct > 150, "correct: {correct}, wrong: {wrong}");
        assert!(wrong < correct / 5, "too many wrong IDs: {wrong}");
    }

    #[test]
    fn noise_spectra_rarely_identified() {
        let gen = SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 150,
            num_peptides: 40,
            noise_spectrum_fraction: 1.0,
            seed: 22,
            ..SyntheticConfig::default()
        });
        let ds = gen.generate();
        let engine = engine_for(&gen);
        let hits = engine.search_dataset(ds.spectra()).iter().flatten().count();
        assert!(
            hits < 30,
            "noise should mostly fail the ion gate, got {hits}"
        );
    }

    #[test]
    fn precursor_gate_excludes_wrong_mass() {
        let pep: Peptide = "ACDEFGHK".parse().unwrap();
        let db = PeptideDatabase::build(std::slice::from_ref(&pep));
        let engine = SearchEngine::new(db, SearchConfig::default());
        // Same peaks, but a precursor 10 Da off: no candidates.
        let s = Spectrum::new(
            "off",
            Precursor::new(pep.mz(2) + 5.0, 2).unwrap(),
            theoretical_spectrum(&pep, 1),
        )
        .unwrap();
        assert!(engine.search_spectrum(&s, 0).is_none());
    }

    #[test]
    fn min_matched_ions_gate() {
        let pep: Peptide = "ACDEFGHK".parse().unwrap();
        let db = PeptideDatabase::build(std::slice::from_ref(&pep));
        // An impossible min_matched_ions gate: every PSM is rejected.
        let cfg = SearchConfig {
            min_matched_ions: 100,
            ..SearchConfig::default()
        };
        let engine = SearchEngine::new(db, cfg);
        let s = Spectrum::new(
            "q",
            Precursor::new(pep.mz(2), 2).unwrap(),
            theoretical_spectrum(&pep, 1),
        )
        .unwrap();
        assert!(engine.search_spectrum(&s, 0).is_none());
    }

    #[test]
    fn empty_spectrum_no_match() {
        let pep: Peptide = "ACDEFGHK".parse().unwrap();
        let db = PeptideDatabase::build(std::slice::from_ref(&pep));
        let engine = SearchEngine::new(db, SearchConfig::default());
        let s = Spectrum::new("e", Precursor::new(pep.mz(2), 2).unwrap(), vec![]).unwrap();
        assert!(engine.search_spectrum(&s, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_tolerance_panics() {
        let db = PeptideDatabase::build(&[]);
        let cfg = SearchConfig {
            fragment_tol_da: 0.0,
            ..SearchConfig::default()
        };
        SearchEngine::new(db, cfg);
    }
}
