//! Simplified peptide database search engine.
//!
//! SpecHD's downstream evaluation (Fig. 11, §IV-E2) feeds consensus
//! spectra to a database search engine (the paper uses MSGF+) and compares
//! the sets of identified unique peptides across clustering tools. This
//! crate is the documented stand-in (DESIGN.md §2): a compact but complete
//! search engine with
//!
//! * a target–decoy [`PeptideDatabase`] indexed by precursor neutral mass,
//! * X!Tandem-style [`hyperscore`] scoring over matched b/y ions,
//! * a [`SearchEngine`] applying precursor and fragment tolerances, and
//! * target–decoy FDR control ([`assign_q_values`], [`filter_at_fdr`]).
//!
//! Relative peptide-set overlaps between tools — the Fig. 11 quantity —
//! are computed by [`overlap::venn3`].
//!
//! # Packed hypervector search
//!
//! Alongside the scalar engine, the crate hosts a packed spectral
//! library search pipeline operating directly in hypervector space:
//!
//! * [`HvLibrary`] — a persistent packed store of library
//!   hypervectors, mass-sorted with parallel metadata arrays and
//!   target/decoy provenance, built from a [`PeptideDatabase`]
//!   ([`HvLibrary::from_database`]) or entry-by-entry via
//!   [`HvLibraryBuilder`] (e.g. from a clustered run's consensus
//!   hypervectors);
//! * [`PackedSearchEngine`] — standard (narrow-window) and
//!   open-modification (wide-window) search sharing one tiled code
//!   path, bit-identical to the [`scalar_search_window`] oracle;
//! * [`HdPsm`] — hits implementing [`ScoredMatch`] so the same
//!   [`assign_q_values`] / [`filter_at_fdr`] machinery controls FDR on
//!   HD scores via [`shuffled_decoy`] library entries.
//!
//! # Example
//!
//! ```
//! use spechd_search::{PeptideDatabase, SearchConfig, SearchEngine};
//! use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig {
//!     num_spectra: 50, num_peptides: 20, seed: 3,
//!     noise_spectrum_fraction: 0.0, ..SyntheticConfig::default()
//! });
//! let ds = gen.generate();
//! let db = PeptideDatabase::build(gen.peptide_library());
//! let engine = SearchEngine::new(db, SearchConfig::default());
//! let psms = engine.search_dataset(ds.spectra());
//! let hits = psms.iter().flatten().count();
//! assert!(hits > 25, "most synthetic spectra should be identifiable, got {hits}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod engine;
mod fdr;
mod library;
pub mod overlap;
mod packed;
mod score;

pub use db::{DbEntry, PeptideDatabase};
pub use engine::{Psm, SearchConfig, SearchEngine};
pub use fdr::{assign_q_values, filter_at_fdr, ScoredMatch};
pub use library::{encode_spectrum_peaks, shuffled_decoy, HvLibrary, HvLibraryBuilder};
pub use packed::{scalar_search_window, HdPsm, PackedSearchConfig, PackedSearchEngine};
pub use score::{hyperscore, shared_peak_count, MatchedIons};
