//! Target–decoy peptide database with a precursor-mass index.

use spechd_ms::Peptide;

/// One database entry: a peptide, its neutral monoisotopic mass, and
/// whether it is a reversed-sequence decoy.
#[derive(Debug, Clone, PartialEq)]
pub struct DbEntry {
    /// The peptide sequence.
    pub peptide: Peptide,
    /// Neutral monoisotopic mass in Dalton.
    pub mass: f64,
    /// Whether this entry is a decoy.
    pub is_decoy: bool,
}

/// A searchable peptide database: all target peptides plus their reversed
/// decoys, sorted by neutral mass for O(log n) candidate retrieval.
///
/// # Examples
///
/// ```
/// use spechd_search::PeptideDatabase;
/// use spechd_ms::Peptide;
/// let targets = vec![Peptide::new("PEPTIDEK")?, Peptide::new("SAMPLER")?];
/// let db = PeptideDatabase::build(&targets);
/// assert_eq!(db.len(), 4); // 2 targets + 2 decoys
/// let mass = targets[0].monoisotopic_mass();
/// assert!(db.candidates(mass, 0.5).iter().any(|e| !e.is_decoy));
/// # Ok::<(), spechd_ms::MsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PeptideDatabase {
    entries: Vec<DbEntry>,
}

impl PeptideDatabase {
    /// Builds the database from target peptides, generating one reversed
    /// decoy per target (palindromic decoys that collide with their target
    /// are skipped).
    pub fn build(targets: &[Peptide]) -> Self {
        let mut entries = Vec::with_capacity(targets.len() * 2);
        for t in targets {
            entries.push(DbEntry {
                peptide: t.clone(),
                mass: t.monoisotopic_mass(),
                is_decoy: false,
            });
            let d = t.decoy();
            if d.sequence() != t.sequence() {
                entries.push(DbEntry {
                    mass: d.monoisotopic_mass(),
                    peptide: d,
                    is_decoy: true,
                });
            }
        }
        entries.sort_by(|a, b| a.mass.total_cmp(&b.mass));
        Self { entries }
    }

    /// Number of entries (targets + decoys).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of target entries.
    pub fn target_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_decoy).count()
    }

    /// All entries sorted by mass.
    pub fn entries(&self) -> &[DbEntry] {
        &self.entries
    }

    /// Entries whose neutral mass lies within `± tol_da` of `mass`.
    ///
    /// The window is **closed on both edges**: an entry with mass
    /// exactly `mass − tol_da` or exactly `mass + tol_da` is included.
    /// [`HvLibrary::window`](crate::HvLibrary::window) uses the same
    /// convention, so scalar and packed search select identical
    /// candidate sets.
    ///
    /// # Panics
    ///
    /// Panics if `mass` is not finite, or `tol_da` is negative or not
    /// finite (a NaN tolerance would silently select an empty window).
    pub fn candidates(&self, mass: f64, tol_da: f64) -> &[DbEntry] {
        assert!(mass.is_finite(), "window center must be finite");
        assert!(
            tol_da.is_finite() && tol_da >= 0.0,
            "tolerance must be finite and non-negative"
        );
        let lo = self.entries.partition_point(|e| e.mass < mass - tol_da);
        let hi = self.entries.partition_point(|e| e.mass <= mass + tol_da);
        &self.entries[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peptides() -> Vec<Peptide> {
        ["PEPTIDEK", "SAMPLER", "ACDEFGHK", "WWWWK"]
            .iter()
            .map(|s| Peptide::new(*s).unwrap())
            .collect()
    }

    #[test]
    fn build_adds_decoys() {
        let db = PeptideDatabase::build(&peptides());
        assert_eq!(db.target_count(), 4);
        assert!(db.len() >= 7, "decoys added (palindromes may collapse)");
    }

    #[test]
    fn entries_sorted_by_mass() {
        let db = PeptideDatabase::build(&peptides());
        assert!(db.entries().windows(2).all(|w| w[0].mass <= w[1].mass));
    }

    #[test]
    fn candidates_window() {
        let pep = Peptide::new("PEPTIDEK").unwrap();
        let db = PeptideDatabase::build(&peptides());
        let c = db.candidates(pep.monoisotopic_mass(), 0.01);
        // Target and its decoy share the same mass.
        assert!(c.len() >= 2);
        assert!(c.iter().any(|e| e.peptide == pep));
        assert!(c.iter().any(|e| e.is_decoy));
    }

    #[test]
    fn candidates_empty_far_away() {
        let db = PeptideDatabase::build(&peptides());
        assert!(db.candidates(10.0, 0.5).is_empty());
        assert!(db.candidates(1e6, 0.5).is_empty());
    }

    #[test]
    fn candidates_tolerance_widens_window() {
        let db = PeptideDatabase::build(&peptides());
        let m = 900.0;
        assert!(db.candidates(m, 1000.0).len() >= db.candidates(m, 1.0).len());
        assert_eq!(db.candidates(m, 1e6).len(), db.len());
    }

    #[test]
    fn palindromic_decoy_skipped() {
        // "KK" reversed-keeping-terminus is "KK": no decoy entry.
        let db = PeptideDatabase::build(&[Peptide::new("KK").unwrap()]);
        assert_eq!(db.len(), 1);
        assert_eq!(db.target_count(), 1);
    }

    #[test]
    fn empty_database() {
        let db = PeptideDatabase::build(&[]);
        assert!(db.is_empty());
        assert!(db.candidates(500.0, 10.0).is_empty());
    }

    #[test]
    fn candidates_window_is_closed_on_both_edges() {
        let db = PeptideDatabase::build(&peptides());
        let m = db.entries()[1].mass;
        // Entry mass exactly at the upper edge: center + tol == m.
        let upper = db.candidates(m - 0.25, 0.25);
        assert!(upper.iter().any(|e| e.mass == m), "upper edge included");
        // Entry mass exactly at the lower edge: center - tol == m.
        let lower = db.candidates(m + 0.25, 0.25);
        assert!(lower.iter().any(|e| e.mass == m), "lower edge included");
        // Zero tolerance centered on the entry still hits it.
        assert!(db.candidates(m, 0.0).iter().any(|e| e.mass == m));
        // Nudge the center past either edge and the entry drops out.
        let eps = 1e-6;
        assert!(!db
            .candidates(m - 0.25 - eps, 0.25)
            .iter()
            .any(|e| e.mass == m));
        assert!(!db
            .candidates(m + 0.25 + eps, 0.25)
            .iter()
            .any(|e| e.mass == m));
    }

    #[test]
    fn candidates_whole_library_window() {
        let db = PeptideDatabase::build(&peptides());
        let all = db.candidates(900.0, f64::MAX / 4.0);
        assert_eq!(all.len(), db.len());
        assert_eq!(all, db.entries());
    }

    #[test]
    #[should_panic(expected = "tolerance must be finite and non-negative")]
    fn candidates_rejects_nan_tolerance() {
        PeptideDatabase::build(&peptides()).candidates(900.0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "tolerance must be finite and non-negative")]
    fn candidates_rejects_negative_tolerance() {
        PeptideDatabase::build(&peptides()).candidates(900.0, -0.5);
    }

    #[test]
    #[should_panic(expected = "window center must be finite")]
    fn candidates_rejects_nan_center() {
        PeptideDatabase::build(&peptides()).candidates(f64::NAN, 0.5);
    }
}
