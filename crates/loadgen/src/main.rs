//! `spechd-loadgen`: concurrent load/latency bench client for
//! `spechd-server`.
//!
//! Drives a grid of *connections × batch size* scenarios against a
//! running server. Every scenario submits one synthetic dataset through
//! one shared job from `C` concurrent connections (round-robin split,
//! disjoint slices), measures per-batch submit→ack round-trip latency
//! and sustained ingest throughput, and then **verifies** that the
//! reassembled served clustering is bit-identical to a local batch
//! `SpecHd::run` over the same spectra in the same stream order.
//!
//! Results go to a `BENCH_pr6.json`-format file via
//! [`spechd_bench::kernel_bench`], with a local `batch_pipeline`
//! reference record so `bench_gate --reference batch_pipeline` can
//! compare machines in relative mode:
//!
//! * `batch_pipeline` — ns per local batch run of the dataset,
//! * `serve_throughput_cC_bB` — wall ns per served spectrum,
//! * `serve_p50_cC_bB` / `serve_p99_cC_bB` — submit→ack RTT quantiles.

#![forbid(unsafe_code)]

use spechd_bench::kernel_bench::{measure_interleaved, write_records, Kernel, KernelRecord};
use spechd_core::{SpecHd, SpecHdOutcome};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::{Spectrum, SpectrumDataset};
use spechd_server::{JobClient, JobConfig, ServiceOutcome};
use std::time::Instant;

const USAGE: &str = "\
spechd-loadgen — concurrent load/latency bench client for spechd-server

USAGE:
    spechd-loadgen --addr HOST:PORT [OPTIONS]

OPTIONS:
    --addr HOST:PORT     Server address (required)
    --out PATH           Bench output file (default BENCH_pr6.json)
    --smoke              Small CI grid: 1200 spectra, 1 and 4
                         connections, batch 8 (default grid: 4000
                         spectra, {1,2,4} connections × batch {16,64})
    --spectra N          Override the dataset size
    --samples N          Timing samples for the batch reference
                         (default 3)
    --help               Show this help
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_arg<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        fail(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => fail(&format!("invalid value {value:?} for {flag}")),
    }
}

struct Scenario {
    connections: usize,
    batch: usize,
}

/// What one client connection did: which dataset indices it submitted
/// at which stream base, every submit RTT, and the outcome it
/// reassembled from the result stream.
struct ClientReport {
    placements: Vec<(u64, Vec<usize>)>,
    latencies_ns: Vec<u128>,
    outcome: ServiceOutcome,
}

fn percentile(sorted: &[u128], p: usize) -> u128 {
    assert!(!sorted.is_empty());
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Runs one scenario: C connections submit disjoint round-robin slices
/// of `dataset` into one job, then everybody waits for the results.
fn run_scenario(
    addr: &str,
    job_id: u64,
    dataset: &SpectrumDataset,
    scenario: &Scenario,
) -> (Vec<ClientReport>, u128) {
    let spectra = dataset.spectra();
    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..scenario.connections)
            .map(|conn| {
                scope.spawn(move || {
                    let mut client = JobClient::connect(addr, job_id, JobConfig::default())
                        .unwrap_or_else(|e| panic!("connect {addr}: {e}"));
                    let slice: Vec<usize> = (conn..spectra.len())
                        .step_by(scenario.connections)
                        .collect();
                    let mut placements = Vec::new();
                    let mut latencies_ns = Vec::new();
                    for batch_indices in slice.chunks(scenario.batch) {
                        let batch: Vec<Spectrum> =
                            batch_indices.iter().map(|&i| spectra[i].clone()).collect();
                        let t0 = Instant::now();
                        let receipt = client
                            .submit(batch)
                            .unwrap_or_else(|e| panic!("submit: {e}"));
                        latencies_ns.push(t0.elapsed().as_nanos());
                        assert_eq!(receipt.count as usize, batch_indices.len());
                        placements.push((receipt.base, batch_indices.to_vec()));
                    }
                    let outcome = client
                        .close_and_wait()
                        .unwrap_or_else(|e| panic!("close_and_wait: {e}"));
                    ClientReport {
                        placements,
                        latencies_ns,
                        outcome,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    (reports, started.elapsed().as_nanos())
}

/// Reconstructs the union dataset in stream order from the clients'
/// submit receipts, runs the local batch pipeline on it, and asserts
/// the served outcome is bit-identical.
fn verify_equivalence(
    engine: &SpecHd,
    dataset: &SpectrumDataset,
    reports: &[ClientReport],
    context: &str,
) {
    let total = dataset.len();
    let mut order: Vec<Option<usize>> = vec![None; total];
    for report in reports {
        for (base, indices) in &report.placements {
            for (offset, &dataset_index) in indices.iter().enumerate() {
                let slot = *base as usize + offset;
                assert!(
                    order[slot].is_none(),
                    "{context}: stream slot {slot} double-booked"
                );
                order[slot] = Some(dataset_index);
            }
        }
    }
    let mut union = SpectrumDataset::new();
    for slot in order {
        let i = slot.expect("stream slot never assigned");
        union.push(dataset.spectra()[i].clone(), dataset.labels()[i]);
    }
    let batch: SpecHdOutcome = engine.run(&union);

    let served = &reports[0].outcome;
    for (c, other) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            &other.outcome, served,
            "{context}: participant {c} reassembled a different outcome"
        );
    }
    let served_kept: Vec<usize> = served.kept.iter().map(|&i| i as usize).collect();
    assert_eq!(served_kept, batch.kept(), "{context}: kept set differs");
    assert_eq!(
        served.labels,
        batch.assignment().labels(),
        "{context}: labels differ"
    );
    let served_consensus: Vec<usize> = served.consensus.iter().map(|&i| i as usize).collect();
    assert_eq!(
        served_consensus,
        batch.consensus(),
        "{context}: consensus differs"
    );
    assert_eq!(
        served.stats.clusters as usize,
        batch.assignment().num_clusters(),
        "{context}: cluster count differs"
    );
}

fn main() {
    let mut addr: Option<String> = None;
    let mut out = String::from("BENCH_pr6.json");
    let mut smoke = false;
    let mut spectra_override: Option<usize> = None;
    let mut samples = 3usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse_arg("--addr", args.next())),
            "--out" => out = parse_arg("--out", args.next()),
            "--smoke" => smoke = true,
            "--spectra" => spectra_override = Some(parse_arg("--spectra", args.next())),
            "--samples" => samples = parse_arg("--samples", args.next()),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = addr else {
        fail("--addr is required");
    };

    let num_spectra = spectra_override.unwrap_or(if smoke { 1200 } else { 4000 });
    let scenarios: Vec<Scenario> = if smoke {
        vec![(1, 8), (4, 8)]
    } else {
        vec![(1, 16), (2, 16), (4, 16), (1, 64), (2, 64), (4, 64)]
    }
    .into_iter()
    .map(|(connections, batch)| Scenario { connections, batch })
    .collect();

    let dataset = SyntheticGenerator::new(SyntheticConfig {
        num_spectra,
        num_peptides: (num_spectra / 4).max(1),
        seed: 0x10AD_6E40,
        ..SyntheticConfig::default()
    })
    .generate();
    let pipeline_config = JobConfig::default().pipeline_config();
    let threads = pipeline_config.threads;
    let dim = pipeline_config.encoder.dim;
    let engine = SpecHd::new(pipeline_config);

    // Local batch reference: what one full clustering of this dataset
    // costs on this machine. bench_gate normalizes the service numbers
    // by it in relative mode.
    eprintln!("measuring batch_pipeline reference ({num_spectra} spectra, {samples} samples)...");
    let mut kernels: Vec<Kernel<'_>> = vec![(
        "batch_pipeline",
        threads,
        Box::new(|| {
            std::hint::black_box(engine.run(&dataset));
        }),
    )];
    let reference_ns = measure_interleaved(samples, &mut kernels)[0];
    drop(kernels);
    let mut records = vec![KernelRecord {
        kernel: "batch_pipeline".into(),
        n: num_spectra,
        dim,
        threads,
        ns_per_op: reference_ns,
    }];

    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ (u64::from(std::process::id()) << 32);
    for (k, scenario) in scenarios.iter().enumerate() {
        let tag = format!("c{}_b{}", scenario.connections, scenario.batch);
        eprintln!(
            "scenario {tag}: {} connections x batch {}...",
            scenario.connections, scenario.batch
        );
        let job_id = nonce.wrapping_add(1 + k as u64);
        let (reports, wall_ns) = run_scenario(&addr, job_id, &dataset, scenario);
        verify_equivalence(&engine, &dataset, &reports, &tag);

        let mut latencies: Vec<u128> = reports
            .iter()
            .flat_map(|r| r.latencies_ns.iter().copied())
            .collect();
        latencies.sort_unstable();
        let p50 = percentile(&latencies, 50);
        let p99 = percentile(&latencies, 99);
        let ns_per_spectrum = wall_ns / num_spectra as u128;
        let spectra_per_s = 1_000_000_000.0 * num_spectra as f64 / wall_ns as f64;
        eprintln!(
            "  ok: {spectra_per_s:.0} spectra/s sustained, submit RTT p50 {:.2} ms / p99 {:.2} ms, equivalence verified",
            p50 as f64 / 1e6,
            p99 as f64 / 1e6,
        );
        for (name, ns) in [
            (format!("serve_throughput_{tag}"), ns_per_spectrum),
            (format!("serve_p50_{tag}"), p50),
            (format!("serve_p99_{tag}"), p99),
        ] {
            records.push(KernelRecord {
                kernel: name,
                n: num_spectra,
                dim,
                threads: scenario.connections,
                ns_per_op: ns.max(1),
            });
        }
    }

    write_records(&out, &records);
    eprintln!("wrote {} records to {out}", records.len());
}
