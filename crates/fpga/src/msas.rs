//! MSAS near-storage preprocessing accelerator model (Table I).

use crate::calib;

/// Model of the MSAS SSD-embedded preprocessing accelerator [Xu et al.,
/// DAC 2022], which parses, filters, top-k-selects and normalizes spectra
/// inside the SSD, "achieving peak bandwidth equivalent to external SSDs".
///
/// Calibrated against Table I of the SpecHD paper: effective bandwidth
/// ≈3.02 GB/s and power ≈9.1 W reproduce all five rows within 8%.
///
/// # Examples
///
/// ```
/// use spechd_fpga::MsasModel;
/// let msas = MsasModel::default();
/// // Table I row 5: 131 GB in 43.38 s.
/// let t = msas.preprocess_time(131_000_000_000);
/// assert!((t - 43.38).abs() / 43.38 < 0.08);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsasModel {
    /// Number of NAND channels feeding the accelerator.
    pub nand_channels: usize,
    /// Per-channel sustained bandwidth in bytes/second.
    pub channel_bandwidth_bps: f64,
    /// Active power of the accelerator plus NAND activity, watts.
    pub power_w: f64,
    /// Fixed job setup time in seconds.
    pub setup_s: f64,
}

impl Default for MsasModel {
    fn default() -> Self {
        // 8 channels × 377.5 MB/s = 3.02 GB/s, the Table-I calibration.
        Self {
            nand_channels: 8,
            channel_bandwidth_bps: calib::MSAS_BANDWIDTH_BPS / 8.0,
            power_w: calib::MSAS_POWER_W,
            setup_s: calib::MSAS_SETUP_S,
        }
    }
}

impl MsasModel {
    /// Effective aggregate bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.nand_channels as f64 * self.channel_bandwidth_bps
    }

    /// Preprocessing time for a raw dataset of `bytes`, in seconds.
    pub fn preprocess_time(&self, bytes: u64) -> f64 {
        self.setup_s + bytes as f64 / self.bandwidth()
    }

    /// Preprocessing energy for a raw dataset of `bytes`, in joules.
    pub fn preprocess_energy(&self, bytes: u64) -> f64 {
        self.preprocess_time(bytes) * self.power_w
    }

    /// A DSE variant with a different channel count (bandwidth scales,
    /// power scales sublinearly: the controller logic is shared).
    pub fn with_channels(&self, channels: usize) -> MsasModel {
        assert!(channels > 0, "need at least one NAND channel");
        let base_controller_w = 2.5;
        let per_channel_w = (self.power_w - base_controller_w) / self.nand_channels as f64;
        MsasModel {
            nand_channels: channels,
            channel_bandwidth_bps: self.channel_bandwidth_bps,
            power_w: base_controller_w + per_channel_w * channels as f64,
            setup_s: self.setup_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper: (bytes, seconds, joules).
    const TABLE1: [(u64, f64, f64); 5] = [
        (5_600_000_000, 1.79, 17.38),
        (25_000_000_000, 8.22, 77.27),
        (54_000_000_000, 18.44, 166.53),
        (87_000_000_000, 28.53, 268.22),
        (131_000_000_000, 43.38, 382.62),
    ];

    #[test]
    fn reproduces_table1_times_within_8_percent() {
        let msas = MsasModel::default();
        for (bytes, secs, _) in TABLE1 {
            let t = msas.preprocess_time(bytes);
            let err = (t - secs).abs() / secs;
            assert!(err < 0.08, "{bytes}: model {t:.2}s vs paper {secs}s");
        }
    }

    #[test]
    fn reproduces_table1_energy_within_10_percent() {
        let msas = MsasModel::default();
        for (bytes, _, joules) in TABLE1 {
            let e = msas.preprocess_energy(bytes);
            let err = (e - joules).abs() / joules;
            assert!(err < 0.10, "{bytes}: model {e:.1}J vs paper {joules}J");
        }
    }

    #[test]
    fn more_channels_more_bandwidth() {
        let base = MsasModel::default();
        let wide = base.with_channels(16);
        assert!(wide.bandwidth() > base.bandwidth() * 1.9);
        assert!(wide.power_w > base.power_w);
        assert!(
            wide.power_w < base.power_w * 2.0,
            "controller power is shared"
        );
    }

    #[test]
    fn energy_proportional_to_time() {
        let msas = MsasModel::default();
        let e = msas.preprocess_energy(10_000_000_000);
        let t = msas.preprocess_time(10_000_000_000);
        assert!((e / t - msas.power_w).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_channels_panics() {
        MsasModel::default().with_channels(0);
    }
}
