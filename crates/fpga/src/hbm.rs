//! HBM2 transfer model.

use crate::calib;

/// High Bandwidth Memory model for the U280's 8 GB HBM2 stack.
///
/// The encoder stores spectrum hypervectors in HBM ("the resultant
/// high-dimensional vectors are stored in High Bandwidth Memory"), and the
/// clustering kernels stream them back out; this model prices those moves.
///
/// # Examples
///
/// ```
/// use spechd_fpga::HbmModel;
/// let hbm = HbmModel::default();
/// // 3.68 GB of hypervectors stream in about 10 ms at effective bandwidth.
/// let t = hbm.transfer_time(3_680_000_000);
/// assert!(t > 0.005 && t < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmModel {
    /// Peak aggregate bandwidth in bytes/second.
    pub peak_bandwidth_bps: f64,
    /// Sustained fraction of peak for streaming access patterns.
    pub efficiency: f64,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
}

impl Default for HbmModel {
    fn default() -> Self {
        Self {
            peak_bandwidth_bps: calib::HBM_BANDWIDTH_BPS,
            efficiency: calib::HBM_EFFICIENCY,
            capacity_bytes: calib::HBM_CAPACITY_BYTES,
        }
    }
}

impl HbmModel {
    /// Effective sustained bandwidth in bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.peak_bandwidth_bps * self.efficiency
    }

    /// Time to move `bytes` through HBM, in seconds.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.effective_bandwidth()
    }

    /// Whether a working set fits in capacity.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.capacity_bytes
    }

    /// Bytes of hypervector storage for `n` spectra at `dim` bits — the
    /// quantity that must fit for single-pass clustering (the GPU-memory
    /// ceiling HyperSpec struggles with, §II-B).
    pub fn hv_bytes(n: u64, dim: usize) -> u64 {
        n * (dim as u64).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_below_peak() {
        let hbm = HbmModel::default();
        assert!(hbm.effective_bandwidth() < hbm.peak_bandwidth_bps);
    }

    #[test]
    fn human_proteome_hvs_fit_hbm() {
        // 21.1M spectra × 256 B = 5.4 GB < 8 GB: the paper's single-pass
        // claim is feasible, unlike a 24 GB GPU holding raw spectra.
        let bytes = HbmModel::hv_bytes(21_100_000, 2048);
        assert_eq!(bytes, 21_100_000 * 256);
        assert!(HbmModel::default().fits(bytes));
    }

    #[test]
    fn raw_spectra_do_not_fit() {
        // The same dataset as raw preprocessed peaks (~616 B/spectrum) also
        // fits, but the full 131 GB raw file clearly does not.
        assert!(!HbmModel::default().fits(131_000_000_000));
    }

    #[test]
    fn transfer_time_linear() {
        let hbm = HbmModel::default();
        let t1 = hbm.transfer_time(1_000_000_000);
        let t2 = hbm.transfer_time(2_000_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
