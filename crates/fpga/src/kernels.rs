//! Cycle models of the four HLS kernels (Fig. 3 / §III of the paper).
//!
//! Each model converts operation counts into cycles at the kernel clock;
//! the constants live in [`crate::calib`] with their provenance.

use crate::calib;

/// Cycle model of one ID-Level encoder kernel (§III-B): pipelined over
/// peaks with the ID/Level arrays partitioned for II = 1, plus a
/// majority/writeback epilogue per spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderKernelModel {
    /// Kernel clock in Hz.
    pub clock_hz: f64,
    /// Peaks consumed per cycle in steady state.
    pub peaks_per_cycle: f64,
    /// Epilogue cycles per spectrum (majority + HBM writeback).
    pub writeback_cycles: f64,
}

impl Default for EncoderKernelModel {
    fn default() -> Self {
        Self {
            clock_hz: calib::KERNEL_CLOCK_HZ,
            peaks_per_cycle: calib::ENCODER_PEAKS_PER_CYCLE,
            writeback_cycles: calib::ENCODER_WRITEBACK_CYCLES,
        }
    }
}

impl EncoderKernelModel {
    /// Cycles to encode `num_spectra` spectra with `peaks_per_spectrum`
    /// average surviving peaks.
    pub fn cycles(&self, num_spectra: u64, peaks_per_spectrum: f64) -> f64 {
        num_spectra as f64 * (peaks_per_spectrum / self.peaks_per_cycle + self.writeback_cycles)
    }

    /// Wall-clock seconds for the same workload on `replicas` parallel
    /// encoder kernels.
    pub fn time(&self, num_spectra: u64, peaks_per_spectrum: f64, replicas: usize) -> f64 {
        assert!(replicas > 0, "need at least one encoder");
        self.cycles(num_spectra, peaks_per_spectrum) / self.clock_hz / replicas as f64
    }

    /// Encoding throughput of one kernel in spectra/second.
    pub fn throughput(&self, peaks_per_spectrum: f64) -> f64 {
        self.clock_hz / (peaks_per_spectrum / self.peaks_per_cycle + self.writeback_cycles)
    }
}

/// Cycle model of the pairwise-distance stage: a fully unrolled
/// `Dhv`-bit XOR feeding a popcount adder tree, one hypervector pair per
/// cycle ("a fast unrolled XOR and an efficient popcount module, both
/// parameterized for Dhv bits").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceKernelModel {
    /// Kernel clock in Hz.
    pub clock_hz: f64,
    /// Pairs retired per cycle.
    pub pairs_per_cycle: f64,
}

impl Default for DistanceKernelModel {
    fn default() -> Self {
        Self {
            clock_hz: calib::KERNEL_CLOCK_HZ,
            pairs_per_cycle: calib::DISTANCE_PAIRS_PER_CYCLE,
        }
    }
}

impl DistanceKernelModel {
    /// Number of pairs in a bucket of `n` spectra.
    pub fn pairs(n: u64) -> u64 {
        n * n.saturating_sub(1) / 2
    }

    /// Cycles to fill the lower-triangular matrix for one bucket of `n`.
    pub fn cycles(&self, n: u64) -> f64 {
        Self::pairs(n) as f64 / self.pairs_per_cycle
    }
}

/// Cycle model of the NN-chain engine (§III-C): chain scans read the
/// partitioned distance row `scan_lanes` entries per cycle; merges apply
/// Lance–Williams updates `update_lanes` entries per cycle; the medoid
/// consensus pass re-reads the original matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnChainKernelModel {
    /// Kernel clock in Hz.
    pub clock_hz: f64,
    /// Parallel scan lanes.
    pub scan_lanes: f64,
    /// Parallel update lanes.
    pub update_lanes: f64,
    /// Comparisons per n² (empirical, from `spechd-cluster` counters).
    pub comparisons_per_n2: f64,
    /// Updates per n².
    pub updates_per_n2: f64,
    /// Consensus accumulate ops per n².
    pub consensus_per_n2: f64,
}

impl Default for NnChainKernelModel {
    fn default() -> Self {
        Self {
            clock_hz: calib::KERNEL_CLOCK_HZ,
            scan_lanes: calib::NNCHAIN_SCAN_LANES,
            update_lanes: calib::NNCHAIN_UPDATE_LANES,
            comparisons_per_n2: calib::NNCHAIN_COMPARISONS_PER_N2,
            updates_per_n2: calib::NNCHAIN_UPDATES_PER_N2,
            consensus_per_n2: calib::CONSENSUS_OPS_PER_N2,
        }
    }
}

impl NnChainKernelModel {
    /// Cycles for the NN-chain agglomeration of one bucket of `n`.
    pub fn cluster_cycles(&self, n: u64) -> f64 {
        let n2 = (n as f64) * (n as f64);
        n2 * self.comparisons_per_n2 / self.scan_lanes
            + n2 * self.updates_per_n2 / self.update_lanes
    }

    /// Cycles for the consensus (medoid) pass of one bucket of `n`.
    pub fn consensus_cycles(&self, n: u64) -> f64 {
        (n as f64) * (n as f64) * self.consensus_per_n2 / self.scan_lanes
    }

    /// Full per-bucket cycles: distance fill + agglomeration + consensus.
    pub fn bucket_cycles(&self, distance: &DistanceKernelModel, n: u64) -> f64 {
        distance.cycles(n) + self.cluster_cycles(n) + self.consensus_cycles(n)
    }
}

/// Cycle model of the bitonic top-k selector inside the preprocessing
/// path: a `width`-lane comparator network retiring one comparator column
/// per lane per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKKernelModel {
    /// Kernel clock in Hz.
    pub clock_hz: f64,
    /// Parallel comparators.
    pub comparators: f64,
}

impl Default for TopKKernelModel {
    fn default() -> Self {
        Self {
            clock_hz: calib::KERNEL_CLOCK_HZ,
            comparators: 64.0,
        }
    }
}

impl TopKKernelModel {
    /// Cycles to top-k one spectrum of `peaks` input peaks, using the
    /// bitonic comparator count from `spechd-preprocess`.
    pub fn cycles_per_spectrum(&self, peaks: usize) -> f64 {
        // Same closed form as spechd_preprocess::topk::bitonic_comparator_count.
        if peaks <= 1 {
            return 0.0;
        }
        let n = peaks.next_power_of_two() as f64;
        let stages = n.log2().round();
        let comparator_ops = n / 2.0 * stages * (stages + 1.0) / 2.0;
        comparator_ops / self.comparators
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_throughput_at_paper_scale() {
        // 50 peaks/spectrum at 300 MHz, 1 peak/cycle + 4 writeback cycles:
        // ≈5.5M spectra/s. One encoder covers 21.1M spectra in ~4 s.
        let enc = EncoderKernelModel::default();
        let tp = enc.throughput(50.0);
        assert!((5e6..6e6).contains(&tp), "throughput {tp}");
        let t = enc.time(21_100_000, 50.0, 1);
        assert!(t > 2.0 && t < 6.0, "encode time {t}");
    }

    #[test]
    fn encoder_replicas_scale_linearly() {
        let enc = EncoderKernelModel::default();
        let t1 = enc.time(1_000_000, 50.0, 1);
        let t2 = enc.time(1_000_000, 50.0, 2);
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn distance_pairs_formula() {
        assert_eq!(DistanceKernelModel::pairs(0), 0);
        assert_eq!(DistanceKernelModel::pairs(1), 0);
        assert_eq!(DistanceKernelModel::pairs(5), 10);
        assert_eq!(DistanceKernelModel::pairs(5000), 12_497_500);
    }

    #[test]
    fn bucket_cycles_dominated_by_distance_for_large_buckets() {
        let nn = NnChainKernelModel::default();
        let dist = DistanceKernelModel::default();
        let n = 5000;
        let d = dist.cycles(n);
        let c = nn.cluster_cycles(n);
        let total = nn.bucket_cycles(&dist, n);
        assert!(
            d > c,
            "distance fill ({d}) should dominate chain work ({c})"
        );
        assert!(total > d);
    }

    #[test]
    fn nnchain_scan_lanes_speed_up_clustering() {
        let mut nn = NnChainKernelModel::default();
        let base = nn.cluster_cycles(1000);
        nn.scan_lanes *= 2.0;
        nn.update_lanes *= 2.0;
        assert!((base / nn.cluster_cycles(1000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn topk_cycles_match_network_size() {
        let model = TopKKernelModel {
            clock_hz: 300e6,
            comparators: 1.0,
        };
        // 8 lanes -> 24 comparators (see preprocess::topk tests).
        assert!((model.cycles_per_spectrum(8) - 24.0).abs() < 1e-9);
        assert_eq!(model.cycles_per_spectrum(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one encoder")]
    fn zero_replicas_panics() {
        EncoderKernelModel::default().time(10, 50.0, 0);
    }
}
