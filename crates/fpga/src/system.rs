//! The composed system model: Fig. 3's dataflow as a timeline.

use crate::kernels::{DistanceKernelModel, EncoderKernelModel, NnChainKernelModel};
use crate::{calib, AlveoU280, HbmModel, MsasModel, NvmeModel, PowerModel, WorkloadShape};

/// System configuration: how many of each kernel, plus the component
/// models. The default is the paper's deployed layout — "a single encoder
/// and 5 clustering kernels" (§IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of encoder kernels.
    pub num_encoders: usize,
    /// Number of NN-chain clustering kernels.
    pub num_cluster_kernels: usize,
    /// Whether spectra reach HBM over P2P (true, the paper's path) or
    /// bounce through host DRAM.
    pub p2p_enabled: bool,
    /// Component models.
    pub msas: MsasModel,
    /// NVMe transfer model.
    pub nvme: NvmeModel,
    /// HBM model.
    pub hbm: HbmModel,
    /// Encoder kernel cycle model.
    pub encoder: EncoderKernelModel,
    /// Distance stage cycle model.
    pub distance: DistanceKernelModel,
    /// NN-chain kernel cycle model.
    pub nnchain: NnChainKernelModel,
    /// Power model.
    pub power: PowerModel,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            num_encoders: 1,
            num_cluster_kernels: 5,
            p2p_enabled: true,
            msas: MsasModel::default(),
            nvme: NvmeModel::default(),
            hbm: HbmModel::default(),
            encoder: EncoderKernelModel::default(),
            distance: DistanceKernelModel::default(),
            nnchain: NnChainKernelModel::default(),
            power: PowerModel::default(),
        }
    }
}

/// Per-stage wall-clock breakdown of one end-to-end run, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Timeline {
    /// Near-storage preprocessing (MSAS).
    pub preprocess_s: f64,
    /// NVMe → HBM transfer of preprocessed spectra.
    pub transfer_s: f64,
    /// ID-Level encoding.
    pub encode_s: f64,
    /// Distance fill + NN-chain + consensus across all buckets.
    pub cluster_s: f64,
    /// Host orchestration and result collection.
    pub host_s: f64,
    /// Total end-to-end seconds.
    pub total_s: f64,
}

/// Per-stage energy breakdown of one run, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// MSAS preprocessing energy.
    pub msas_j: f64,
    /// FPGA kernel energy (encode + cluster + transfer windows).
    pub fpga_j: f64,
    /// Host orchestration energy.
    pub host_j: f64,
    /// Total joules.
    pub total_j: f64,
}

/// The analytic SpecHD system model.
///
/// # Examples
///
/// ```
/// use spechd_fpga::{SystemConfig, SystemModel, WorkloadShape};
/// let model = SystemModel::new(SystemConfig::default());
/// let t = model.end_to_end(&WorkloadShape::pxd000561());
/// assert!(t.cluster_s < t.total_s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemModel {
    config: SystemConfig,
}

impl SystemModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if kernel counts are zero.
    pub fn new(config: SystemConfig) -> Self {
        assert!(config.num_encoders > 0, "need at least one encoder");
        assert!(
            config.num_cluster_kernels > 0,
            "need at least one clustering kernel"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Preprocessed bytes shipped over PCIe for a workload.
    pub fn preprocessed_bytes(&self, shape: &WorkloadShape) -> u64 {
        (shape.num_spectra as f64 * calib::preprocessed_bytes_per_spectrum(50)) as u64
    }

    /// Seconds for the standalone clustering phase (pre-encoded vectors
    /// already resident in HBM) — the Fig. 8 quantity.
    pub fn standalone_clustering_time(&self, shape: &WorkloadShape) -> f64 {
        let buckets = shape.num_buckets();
        let mean = shape.mean_bucket_size as u64;
        let per_bucket = self
            .config
            .nnchain
            .bucket_cycles(&self.config.distance, mean);
        let total_cycles = per_bucket * buckets as f64;
        let parallel = self.config.num_cluster_kernels as f64 * calib::KERNEL_LOAD_BALANCE;
        // HBM streaming of hypervectors into the kernels overlaps with the
        // dataflow but bounds throughput from below.
        let hv_stream_s = self
            .config
            .hbm
            .transfer_time(HbmModel::hv_bytes(shape.num_spectra, shape.dim));
        (total_cycles / self.config.nnchain.clock_hz / parallel).max(hv_stream_s)
    }

    /// Seconds for the encoding phase.
    pub fn encode_time(&self, shape: &WorkloadShape) -> f64 {
        self.config.encoder.time(
            shape.num_spectra,
            shape.peaks_per_spectrum,
            self.config.num_encoders,
        )
    }

    /// Full end-to-end timeline for a workload (Fig. 7 quantity).
    pub fn end_to_end(&self, shape: &WorkloadShape) -> Timeline {
        let preprocess_s = self.config.msas.preprocess_time(shape.raw_bytes);
        let bytes = self.preprocessed_bytes(shape);
        let transfer_s = if self.config.p2p_enabled {
            self.config.nvme.p2p_time(bytes)
        } else {
            self.config.nvme.host_bounce_time(bytes)
        };
        let encode_s = self.encode_time(shape);
        let cluster_s = self.standalone_clustering_time(shape);
        let host_s =
            calib::FPGA_SETUP_S + shape.num_spectra as f64 * calib::HOST_OVERHEAD_PER_SPECTRUM_S;
        let total_s = preprocess_s + transfer_s + encode_s + cluster_s + host_s;
        Timeline {
            preprocess_s,
            transfer_s,
            encode_s,
            cluster_s,
            host_s,
            total_s,
        }
    }

    /// Energy breakdown for a full run (Fig. 9a quantity).
    pub fn end_to_end_energy(&self, shape: &WorkloadShape) -> EnergyBreakdown {
        let t = self.end_to_end(shape);
        let p = &self.config.power;
        let msas_j = p.msas_energy(t.preprocess_s);
        let fpga_j = p.fpga_energy(t.transfer_s + t.encode_s + t.cluster_s)
            + p.fpga_idle_w * (t.preprocess_s + t.host_s);
        let host_j = p.orchestration_energy(t.host_s);
        EnergyBreakdown {
            msas_j,
            fpga_j,
            host_j,
            total_j: msas_j + fpga_j + host_j,
        }
    }

    /// Energy of the standalone clustering phase (Fig. 9b quantity).
    pub fn clustering_energy(&self, shape: &WorkloadShape) -> f64 {
        self.config
            .power
            .fpga_energy(self.standalone_clustering_time(shape))
    }

    /// Checks that the configuration fits the U280 and the working set
    /// fits HBM; returns a human-readable list of violations (empty =
    /// feasible).
    pub fn feasibility(&self, shape: &WorkloadShape) -> Vec<String> {
        let mut problems = Vec::new();
        if !AlveoU280::fits(
            self.config.num_encoders,
            self.config.num_cluster_kernels,
            shape.dim,
            2048,
            64,
            shape.mean_bucket_size as usize * 2,
        ) {
            problems.push(format!(
                "{} encoders + {} clustering kernels exceed U280 fabric",
                self.config.num_encoders, self.config.num_cluster_kernels
            ));
        }
        let hv_bytes = HbmModel::hv_bytes(shape.num_spectra, shape.dim);
        if !self.config.hbm.fits(hv_bytes) {
            problems.push(format!(
                "hypervector working set {:.1} GB exceeds HBM capacity",
                hv_bytes as f64 / 1e9
            ));
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SystemModel {
        SystemModel::new(SystemConfig::default())
    }

    #[test]
    fn pxd000561_clustering_near_80_seconds() {
        // Fig. 8: "Spec-HD clocked in at 80 seconds" for PXD000561
        // standalone clustering.
        let t = model().standalone_clustering_time(&WorkloadShape::pxd000561());
        assert!((55.0..110.0).contains(&t), "clustering time {t:.1}s");
    }

    #[test]
    fn pxd000561_end_to_end_about_five_minutes() {
        // §I / §V: the 131 GB human proteome clusters "in just 5 minutes".
        let t = model().end_to_end(&WorkloadShape::pxd000561());
        assert!(
            (180.0..420.0).contains(&t.total_s),
            "end-to-end {:.0}s",
            t.total_s
        );
        // And preprocessing matches Table I within the MSAS tolerance.
        assert!((t.preprocess_s - 43.38).abs() / 43.38 < 0.08);
    }

    #[test]
    fn timeline_components_sum() {
        let t = model().end_to_end(&WorkloadShape::pxd003258());
        let sum = t.preprocess_s + t.transfer_s + t.encode_s + t.cluster_s + t.host_s;
        assert!((sum - t.total_s).abs() < 1e-9);
    }

    #[test]
    fn more_cluster_kernels_speed_up_clustering() {
        let mut cfg = SystemConfig::default();
        let slow = SystemModel::new(cfg).standalone_clustering_time(&WorkloadShape::pxd000561());
        cfg.num_cluster_kernels = 10;
        let fast = SystemModel::new(cfg).standalone_clustering_time(&WorkloadShape::pxd000561());
        assert!(fast < slow);
    }

    #[test]
    fn p2p_beats_host_bounce_end_to_end() {
        let mut cfg = SystemConfig::default();
        let with_p2p = SystemModel::new(cfg).end_to_end(&WorkloadShape::pxd001197());
        cfg.p2p_enabled = false;
        let without = SystemModel::new(cfg).end_to_end(&WorkloadShape::pxd001197());
        assert!(without.transfer_s > with_p2p.transfer_s);
    }

    #[test]
    fn energy_breakdown_sums() {
        let e = model().end_to_end_energy(&WorkloadShape::pxd000561());
        assert!((e.total_j - (e.msas_j + e.fpga_j + e.host_j)).abs() < 1e-6);
        assert!(e.total_j > 0.0);
    }

    #[test]
    fn pxd000561_energy_order_of_magnitude() {
        // SpecHD end-to-end energy should be O(10 kJ) — the basis of the
        // 31× efficiency claim against a ~350 kJ GPU+CPU pipeline.
        let e = model().end_to_end_energy(&WorkloadShape::pxd000561());
        assert!(
            (5_000.0..30_000.0).contains(&e.total_j),
            "total energy {:.0} J",
            e.total_j
        );
    }

    #[test]
    fn paper_configuration_is_feasible() {
        let problems = model().feasibility(&WorkloadShape::pxd000561());
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn infeasible_configuration_detected() {
        let cfg = SystemConfig {
            num_cluster_kernels: 64,
            ..SystemConfig::default()
        };
        let m = SystemModel::new(cfg);
        assert!(!m.feasibility(&WorkloadShape::pxd000561()).is_empty());
    }

    #[test]
    fn smaller_datasets_run_faster() {
        let small = model().end_to_end(&WorkloadShape::pxd001468());
        let large = model().end_to_end(&WorkloadShape::pxd000561());
        assert!(small.total_s < large.total_s / 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one encoder")]
    fn zero_encoders_panics() {
        let cfg = SystemConfig {
            num_encoders: 0,
            ..SystemConfig::default()
        };
        SystemModel::new(cfg);
    }
}
