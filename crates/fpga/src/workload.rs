//! Workload descriptions consumed by the system model.

/// The shape of a clustering workload: everything the performance model
/// needs to know about a dataset, independent of its actual spectra.
///
/// For the five paper datasets use the constructors; for synthetic runs
/// derive the shape from measured bucket statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadShape {
    /// Number of MS/MS spectra.
    pub num_spectra: u64,
    /// Raw on-disk bytes (drives the MSAS stage).
    pub raw_bytes: u64,
    /// Average surviving peaks per spectrum after filter + top-k.
    pub peaks_per_spectrum: f64,
    /// Mean precursor-bucket size at the configured resolution. Large
    /// repository-scale runs concentrate mass buckets (the human proteome
    /// draft averages ≈5000 spectra per 1-Da mass bucket).
    pub mean_bucket_size: f64,
    /// Hypervector dimensionality.
    pub dim: usize,
}

impl WorkloadShape {
    /// Builds a shape from dataset scale numbers, with the paper-default
    /// 50 surviving peaks and D = 2048.
    ///
    /// # Panics
    ///
    /// Panics if `num_spectra == 0` or `mean_bucket_size <= 0`.
    pub fn new(num_spectra: u64, raw_bytes: u64, mean_bucket_size: f64) -> Self {
        assert!(num_spectra > 0, "workload needs spectra");
        assert!(mean_bucket_size > 0.0, "bucket size must be positive");
        Self {
            num_spectra,
            raw_bytes,
            peaks_per_spectrum: 50.0,
            mean_bucket_size,
            dim: 2048,
        }
    }

    /// Number of buckets implied by the mean bucket size (at least 1).
    pub fn num_buckets(&self) -> u64 {
        ((self.num_spectra as f64 / self.mean_bucket_size).ceil() as u64).max(1)
    }

    /// The PXD000561 human-proteome shape (Table I row 5): 21.1M spectra,
    /// 131 GB. Mass buckets at 1-Da resolution average ≈5000 spectra.
    pub fn pxd000561() -> Self {
        Self::new(21_100_000, 131_000_000_000, 5_000.0)
    }

    /// PXD001468 (1.1M spectra, 5.6 GB); sparse buckets (≈700).
    pub fn pxd001468() -> Self {
        Self::new(1_100_000, 5_600_000_000, 700.0)
    }

    /// PXD001197 (1.1M spectra, 25 GB).
    pub fn pxd001197() -> Self {
        Self::new(1_100_000, 25_000_000_000, 700.0)
    }

    /// PXD003258 (4.1M spectra, 54 GB).
    pub fn pxd003258() -> Self {
        Self::new(4_100_000, 54_000_000_000, 1_800.0)
    }

    /// PXD001511 (4.2M spectra, 87 GB).
    pub fn pxd001511() -> Self {
        Self::new(4_200_000, 87_000_000_000, 1_800.0)
    }

    /// All five Table-I shapes in the table's order.
    pub fn table1() -> [WorkloadShape; 5] {
        [
            Self::pxd001468(),
            Self::pxd001197(),
            Self::pxd003258(),
            Self::pxd001511(),
            Self::pxd000561(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count() {
        let w = WorkloadShape::new(10_000, 1, 250.0);
        assert_eq!(w.num_buckets(), 40);
    }

    #[test]
    fn table1_shapes_match_profiles() {
        let shapes = WorkloadShape::table1();
        assert_eq!(shapes[0].num_spectra, 1_100_000);
        assert_eq!(shapes[4].raw_bytes, 131_000_000_000);
        for s in &shapes {
            assert!(s.num_buckets() >= 1);
            assert_eq!(s.dim, 2048);
        }
    }

    #[test]
    #[should_panic(expected = "needs spectra")]
    fn zero_spectra_panics() {
        WorkloadShape::new(0, 1, 10.0);
    }
}
