//! Analytic FPGA / near-storage system simulator for SpecHD.
//!
//! The paper runs on a Xilinx Alveo U280 plus an SSD-embedded preprocessing
//! accelerator (MSAS) reached over PCIe peer-to-peer. This crate is the
//! documented hardware substitution (DESIGN.md §2): a mechanistic
//! performance and energy model of that system, built from cycle counts ×
//! clock frequency and device power, with every calibration constant tied
//! to a number the paper itself reports ([`calib`]).
//!
//! Components:
//!
//! * [`AlveoU280`] — device description and resource budgeting.
//! * [`HbmModel`] / [`NvmeModel`] — memory and storage transfer models.
//! * [`MsasModel`] — the near-storage preprocessing accelerator
//!   (calibrated to Table I: ≈3.0 GB/s, ≈9.1 W).
//! * [`kernels`] — cycle models of the four HLS kernels (ID-Level encoder,
//!   XOR/popcount distance array, NN-chain engine, bitonic top-k).
//! * [`PowerModel`] — XRT/RAPL/SMI-style power numbers.
//! * [`SystemModel`] — composes everything into the end-to-end timeline of
//!   Fig. 3 (1 encoder + 5 clustering kernels by default).
//! * [`dse`] — design space exploration over kernel counts and unrolls.
//!
//! # Example
//!
//! ```
//! use spechd_fpga::{SystemConfig, SystemModel, WorkloadShape};
//!
//! let model = SystemModel::new(SystemConfig::default());
//! let shape = WorkloadShape::pxd000561();
//! let t = model.end_to_end(&shape);
//! // The paper's headline: the 131 GB human proteome clusters in ~5 min.
//! assert!(t.total_s > 120.0 && t.total_s < 600.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
mod device;
pub mod dse;
mod energy;
mod hbm;
pub mod kernels;
mod msas;
mod nvme;
mod system;
mod workload;

pub use device::{AlveoU280, ResourceBudget};
pub use energy::PowerModel;
pub use hbm::HbmModel;
pub use msas::MsasModel;
pub use nvme::NvmeModel;
pub use system::{EnergyBreakdown, SystemConfig, SystemModel, Timeline};
pub use workload::WorkloadShape;
