//! Design space exploration (§I: "guided by design space exploration,
//! this combination yields notable advancements in both hardware
//! efficiency and energy conservation").
//!
//! Sweeps kernel replication, MSAS channel counts and the P2P toggle,
//! reporting feasible configurations with their time/energy and the
//! Pareto-optimal subset.

use crate::{MsasModel, SystemConfig, SystemModel, WorkloadShape};

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Encoder kernel count.
    pub encoders: usize,
    /// Clustering kernel count.
    pub cluster_kernels: usize,
    /// MSAS NAND channel count.
    pub msas_channels: usize,
    /// Whether P2P is enabled.
    pub p2p: bool,
    /// End-to-end seconds.
    pub total_s: f64,
    /// End-to-end joules.
    pub total_j: f64,
    /// Whether the point fits the device and HBM.
    pub feasible: bool,
}

/// Sweep ranges for the exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct DseSweep {
    /// Encoder counts to try.
    pub encoders: Vec<usize>,
    /// Clustering kernel counts to try.
    pub cluster_kernels: Vec<usize>,
    /// MSAS channel counts to try.
    pub msas_channels: Vec<usize>,
}

impl Default for DseSweep {
    fn default() -> Self {
        Self {
            encoders: vec![1, 2],
            cluster_kernels: vec![1, 2, 3, 5, 8],
            msas_channels: vec![4, 8, 16],
        }
    }
}

/// Evaluates every point of the sweep on `shape`.
pub fn explore(shape: &WorkloadShape, sweep: &DseSweep) -> Vec<DesignPoint> {
    let mut points = Vec::new();
    for &enc in &sweep.encoders {
        for &ck in &sweep.cluster_kernels {
            for &ch in &sweep.msas_channels {
                for p2p in [true, false] {
                    let cfg = SystemConfig {
                        num_encoders: enc,
                        num_cluster_kernels: ck,
                        msas: MsasModel::default().with_channels(ch),
                        p2p_enabled: p2p,
                        ..SystemConfig::default()
                    };
                    let model = SystemModel::new(cfg);
                    let t = model.end_to_end(shape);
                    let e = model.end_to_end_energy(shape);
                    points.push(DesignPoint {
                        encoders: enc,
                        cluster_kernels: ck,
                        msas_channels: ch,
                        p2p,
                        total_s: t.total_s,
                        total_j: e.total_j,
                        feasible: model.feasibility(shape).is_empty(),
                    });
                }
            }
        }
    }
    points
}

/// Filters `points` down to the feasible Pareto front over
/// (time, energy): no other feasible point is at least as good on both
/// axes and strictly better on one.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let feasible: Vec<&DesignPoint> = points.iter().filter(|p| p.feasible).collect();
    let dominated = |p: &DesignPoint| -> bool {
        feasible.iter().any(|q| {
            (q.total_s <= p.total_s && q.total_j < p.total_j)
                || (q.total_s < p.total_s && q.total_j <= p.total_j)
        })
    };
    let mut front: Vec<DesignPoint> = feasible
        .iter()
        .filter(|p| !dominated(p))
        .map(|p| (*p).clone())
        .collect();
    front.sort_by(|a, b| a.total_s.total_cmp(&b.total_s));
    front.dedup_by(|a, b| a.total_s == b.total_s && a.total_j == b.total_j);
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_grid() {
        let points = explore(&WorkloadShape::pxd001468(), &DseSweep::default());
        assert_eq!(points.len(), 2 * 5 * 3 * 2);
    }

    #[test]
    fn front_is_nonempty_and_feasible() {
        let points = explore(&WorkloadShape::pxd000561(), &DseSweep::default());
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        assert!(front.iter().all(|p| p.feasible));
    }

    #[test]
    fn front_is_mutually_non_dominating() {
        let points = explore(&WorkloadShape::pxd000561(), &DseSweep::default());
        let front = pareto_front(&points);
        for a in &front {
            for b in &front {
                if a != b {
                    let dominates = a.total_s <= b.total_s
                        && a.total_j <= b.total_j
                        && (a.total_s < b.total_s || a.total_j < b.total_j);
                    assert!(!dominates, "{a:?} dominates {b:?}");
                }
            }
        }
    }

    #[test]
    fn more_kernels_never_hurts_time_on_front() {
        // The fastest point on the front should use the most clustering
        // kernels that still fit.
        let points = explore(&WorkloadShape::pxd000561(), &DseSweep::default());
        let front = pareto_front(&points);
        let fastest = front.first().unwrap();
        assert!(fastest.cluster_kernels >= 5, "{fastest:?}");
    }

    #[test]
    fn p2p_points_dominate_bounce_points() {
        // At identical kernel/channel settings, P2P is never slower.
        let points = explore(&WorkloadShape::pxd001197(), &DseSweep::default());
        for p in points.iter().filter(|p| p.p2p) {
            let twin = points.iter().find(|q| {
                !q.p2p
                    && q.encoders == p.encoders
                    && q.cluster_kernels == p.cluster_kernels
                    && q.msas_channels == p.msas_channels
            });
            if let Some(t) = twin {
                assert!(p.total_s <= t.total_s + 1e-9);
            }
        }
    }
}
