//! FPGA device description and resource budgeting.

/// Resource budget of an FPGA device (or the usage of a kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36 Kb block RAMs.
    pub brams: u64,
    /// UltraRAM blocks (288 Kb each).
    pub urams: u64,
    /// DSP48 slices.
    pub dsps: u64,
}

impl ResourceBudget {
    /// Component-wise sum.
    pub fn plus(self, other: ResourceBudget) -> ResourceBudget {
        ResourceBudget {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            brams: self.brams + other.brams,
            urams: self.urams + other.urams,
            dsps: self.dsps + other.dsps,
        }
    }

    /// Scales every resource by an integer replication factor.
    pub fn times(self, factor: u64) -> ResourceBudget {
        ResourceBudget {
            luts: self.luts * factor,
            ffs: self.ffs * factor,
            brams: self.brams * factor,
            urams: self.urams * factor,
            dsps: self.dsps * factor,
        }
    }

    /// Whether `self` fits within `capacity`.
    pub fn fits_in(self, capacity: ResourceBudget) -> bool {
        self.luts <= capacity.luts
            && self.ffs <= capacity.ffs
            && self.brams <= capacity.brams
            && self.urams <= capacity.urams
            && self.dsps <= capacity.dsps
    }

    /// Highest utilization fraction across resource classes (0 when the
    /// capacity is all zero).
    pub fn utilization_of(self, capacity: ResourceBudget) -> f64 {
        let frac = |used: u64, cap: u64| -> f64 {
            if cap == 0 {
                0.0
            } else {
                used as f64 / cap as f64
            }
        };
        [
            frac(self.luts, capacity.luts),
            frac(self.ffs, capacity.ffs),
            frac(self.brams, capacity.brams),
            frac(self.urams, capacity.urams),
            frac(self.dsps, capacity.dsps),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

/// The Xilinx Alveo U280 Data Center Accelerator Card (the paper's
/// platform): UltraScale+ XCU280 with 8 GB HBM2 at 460 GB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlveoU280;

impl AlveoU280 {
    /// Total programmable-logic resources (XCU280 datasheet).
    pub fn capacity() -> ResourceBudget {
        ResourceBudget {
            luts: 1_304_000,
            ffs: 2_607_000,
            brams: 2_016,
            urams: 960,
            dsps: 9_024,
        }
    }

    /// Estimated resources of one ID-Level encoder kernel at
    /// dimensionality `dim`: the XOR array and majority counters dominate
    /// (counter array of `dim` 8-bit counters, `dim`-bit wide XOR, plus
    /// the partitioned ID/Level BRAMs).
    pub fn encoder_kernel(dim: usize, mz_bins: usize, levels: usize) -> ResourceBudget {
        let dim = dim as u64;
        let item_bits = ((mz_bins + levels) as u64) * dim;
        ResourceBudget {
            luts: 12 * dim, // XOR + counter increment logic
            ffs: 16 * dim,  // counter registers + pipeline
            brams: item_bits.div_ceil(36 * 1024).max(4),
            urams: 0,
            dsps: 8,
        }
    }

    /// Estimated resources of one NN-chain clustering kernel at
    /// dimensionality `dim` and maximum bucket size `max_bucket`:
    /// the full-width XOR/popcount tree plus the partitioned distance-row
    /// BRAM and cluster bookkeeping.
    pub fn clustering_kernel(dim: usize, max_bucket: usize) -> ResourceBudget {
        let dim = dim as u64;
        // popcount adder tree for dim bits ≈ dim LUT6 + dim/2 carry.
        let row_bits = (max_bucket as u64) * 16; // one u16 matrix row
        ResourceBudget {
            luts: 9 * dim + 6_000,
            ffs: 11 * dim + 8_000,
            brams: (row_bits * 4).div_ceil(36 * 1024).max(8), // chain + rows + clusters
            urams: 4,
            dsps: 16,
        }
    }

    /// Whether a configuration of `encoders` encoder kernels and
    /// `cluster_kernels` clustering kernels fits on the device, leaving
    /// 20% headroom for the static shell (XDMA/HBM controllers).
    pub fn fits(
        encoders: usize,
        cluster_kernels: usize,
        dim: usize,
        mz_bins: usize,
        levels: usize,
        max_bucket: usize,
    ) -> bool {
        let total = Self::encoder_kernel(dim, mz_bins, levels)
            .times(encoders as u64)
            .plus(Self::clustering_kernel(dim, max_bucket).times(cluster_kernels as u64));
        let capacity = Self::capacity();
        let shell_headroom = ResourceBudget {
            luts: capacity.luts * 8 / 10,
            ffs: capacity.ffs * 8 / 10,
            brams: capacity.brams * 8 / 10,
            urams: capacity.urams * 8 / 10,
            dsps: capacity.dsps * 8 / 10,
        };
        total.fits_in(shell_headroom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_fits() {
        // 1 encoder + 5 clustering kernels at D=2048 (the Fig. 3 layout).
        assert!(AlveoU280::fits(1, 5, 2048, 2048, 64, 8192));
    }

    #[test]
    fn absurd_configuration_does_not_fit() {
        assert!(!AlveoU280::fits(16, 64, 8192, 8192, 256, 65_536));
    }

    #[test]
    fn budget_arithmetic() {
        let a = ResourceBudget {
            luts: 10,
            ffs: 20,
            brams: 1,
            urams: 0,
            dsps: 2,
        };
        let b = a.times(3);
        assert_eq!(b.luts, 30);
        let c = a.plus(b);
        assert_eq!(c.ffs, 80);
    }

    #[test]
    fn fits_in_and_utilization() {
        let cap = ResourceBudget {
            luts: 100,
            ffs: 100,
            brams: 10,
            urams: 10,
            dsps: 10,
        };
        let use_half = ResourceBudget {
            luts: 50,
            ffs: 20,
            brams: 5,
            urams: 0,
            dsps: 1,
        };
        assert!(use_half.fits_in(cap));
        assert!((use_half.utilization_of(cap) - 0.5).abs() < 1e-12);
        let too_big = ResourceBudget {
            luts: 200,
            ..use_half
        };
        assert!(!too_big.fits_in(cap));
    }

    #[test]
    fn encoder_scales_with_dim() {
        let small = AlveoU280::encoder_kernel(1024, 1024, 32);
        let large = AlveoU280::encoder_kernel(4096, 1024, 32);
        assert!(large.luts > small.luts);
        assert!(large.brams >= small.brams);
    }

    #[test]
    fn clustering_kernel_brams_scale_with_bucket() {
        let small = AlveoU280::clustering_kernel(2048, 1024);
        let large = AlveoU280::clustering_kernel(2048, 32_768);
        assert!(large.brams > small.brams);
    }

    #[test]
    fn utilization_zero_capacity() {
        let z = ResourceBudget::default();
        assert_eq!(z.utilization_of(z), 0.0);
    }
}
