//! NVMe storage and PCIe peer-to-peer transfer model.

use crate::calib;

/// NVMe SSD transfer model with both the P2P path (NVMe → HBM directly,
/// the paper's configuration on the U280) and the conventional
/// host-bounce path (NVMe → host DRAM → device) for comparison.
///
/// # Examples
///
/// ```
/// use spechd_fpga::NvmeModel;
/// let nvme = NvmeModel::default();
/// let gb = 10_000_000_000u64;
/// assert!(nvme.p2p_time(gb) < nvme.host_bounce_time(gb));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmeModel {
    /// P2P (direct NVMe→device) bandwidth in bytes/second.
    pub p2p_bandwidth_bps: f64,
    /// Host-mediated bandwidth in bytes/second.
    pub host_bandwidth_bps: f64,
}

impl Default for NvmeModel {
    fn default() -> Self {
        Self {
            p2p_bandwidth_bps: calib::P2P_BANDWIDTH_BPS,
            host_bandwidth_bps: calib::HOST_BOUNCE_BANDWIDTH_BPS,
        }
    }
}

impl NvmeModel {
    /// Seconds to move `bytes` over the P2P path.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.p2p_bandwidth_bps
    }

    /// Seconds to move `bytes` through host memory.
    pub fn host_bounce_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.host_bandwidth_bps
    }

    /// Speedup of P2P over the bounce path (the quantity the paper's
    /// "seamless data exchanges between the FPGA and NVMe storage" claim
    /// rests on).
    pub fn p2p_speedup(&self) -> f64 {
        self.p2p_bandwidth_bps / self.host_bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_faster_than_bounce() {
        let nvme = NvmeModel::default();
        assert!(nvme.p2p_speedup() > 1.0);
    }

    #[test]
    fn times_scale_linearly() {
        let nvme = NvmeModel::default();
        assert!((nvme.p2p_time(2_000_000) / nvme.p2p_time(1_000_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn preprocessed_human_proteome_transfer_under_ten_seconds() {
        // 21.1M spectra × ~616 B ≈ 13 GB → ~4 s over P2P; the transfer is
        // not the bottleneck, exactly as the paper's design intends.
        let nvme = NvmeModel::default();
        let bytes = (21_100_000.0 * crate::calib::preprocessed_bytes_per_spectrum(50)) as u64;
        assert!(nvme.p2p_time(bytes) < 10.0);
    }
}
