//! Calibration constants for the analytic models.
//!
//! Every constant in this module is documented with the SpecHD paper
//! sentence or table it reproduces. Changing one constant moves exactly
//! one experimental knob, which keeps the model auditable.

/// Kernel clock frequency in Hz. HLS designs on the Alveo U280 close
/// timing at 300 MHz for wide bitwise datapaths (the paper's XOR/popcount
/// modules are "parameterized for Dhv bits").
pub const KERNEL_CLOCK_HZ: f64 = 300e6;

/// Effective MSAS preprocessing bandwidth in bytes/second.
/// Table I implies 5.6 GB/1.79 s ≈ 25 GB/8.22 s ≈ … ≈ 131 GB/43.38 s,
/// i.e. ≈3.02 GB/s on every row.
pub const MSAS_BANDWIDTH_BPS: f64 = 3.02e9;

/// MSAS + SSD active power in watts. Table I implies
/// 382.62 J / 43.38 s ≈ 8.8 W up to 17.38 J / 1.79 s ≈ 9.7 W; the model
/// uses the energy-weighted mean.
pub const MSAS_POWER_W: f64 = 9.1;

/// Fixed MSAS job setup time in seconds (firmware command submission and
/// accelerator configuration); explains the slightly super-linear small-
/// dataset rows of Table I.
pub const MSAS_SETUP_S: f64 = 0.05;

/// PCIe peer-to-peer bandwidth from NVMe to HBM in bytes/second
/// (Gen3 x4 SSD ceiling; the paper's P2P path "eliminates intermediary
/// host memory interactions").
pub const P2P_BANDWIDTH_BPS: f64 = 3.2e9;

/// Host-mediated NVMe→DRAM→device bandwidth in bytes/second; the bounce
/// path P2P avoids. Used by the DSE to quantify the P2P advantage.
pub const HOST_BOUNCE_BANDWIDTH_BPS: f64 = 2.2e9;

/// HBM2 aggregate bandwidth in bytes/second (U280 datasheet: 460 GB/s).
pub const HBM_BANDWIDTH_BPS: f64 = 460e9;

/// HBM capacity in bytes (U280: 8 GB).
pub const HBM_CAPACITY_BYTES: u64 = 8_000_000_000;

/// Fraction of peak HBM bandwidth sustained by streaming kernels.
pub const HBM_EFFICIENCY: f64 = 0.80;

/// Peaks processed per cycle by one encoder kernel after pipeline fill
/// ("loop unrolling … ensures parallel processing across peak_count";
/// initiation interval 1 with the ID/Level arrays partitioned).
pub const ENCODER_PEAKS_PER_CYCLE: f64 = 1.0;

/// Cycles to binarize and write back one spectrum hypervector
/// (majority + HBM store of D bits over a 512-bit AXI port: D/512).
pub const ENCODER_WRITEBACK_CYCLES: f64 = 4.0;

/// Hypervector pairs compared per cycle by one distance unit: the fully
/// unrolled XOR + popcount tree consumes a whole `Dhv`-bit pair each cycle.
pub const DISTANCE_PAIRS_PER_CYCLE: f64 = 1.0;

/// Parallel lanes of the NN-chain minimum scan (the distance-matrix row
/// is partitioned across BRAM banks, "memory partitioning and pipelining").
pub const NNCHAIN_SCAN_LANES: f64 = 8.0;

/// Parallel lanes of the Lance–Williams row update after a merge.
pub const NNCHAIN_UPDATE_LANES: f64 = 8.0;

/// NN-chain comparisons per n² (measured from `spechd-cluster`: the chain
/// walk visits each pair ~3 times on random data).
pub const NNCHAIN_COMPARISONS_PER_N2: f64 = 3.0;

/// Lance–Williams updates per n² (one row per merge: Σ sizes ≈ n²/2).
pub const NNCHAIN_UPDATES_PER_N2: f64 = 0.5;

/// Consensus (medoid) distance accumulations per n² within a bucket.
pub const CONSENSUS_OPS_PER_N2: f64 = 1.0;

/// Load-balance efficiency of LPT scheduling buckets over the clustering
/// kernels (a handful of oversized buckets straggle).
pub const KERNEL_LOAD_BALANCE: f64 = 0.92;

/// Host-side orchestration overhead per spectrum in seconds: XRT kernel
/// launches, buffer bookkeeping and result collection. Calibrated so the
/// PXD000561 end-to-end lands at the paper's "just 5 minutes" while the
/// standalone clustering phase stays at Fig. 8's 80 s.
pub const HOST_OVERHEAD_PER_SPECTRUM_S: f64 = 6.0e-6;

/// Fixed per-run FPGA bring-up seconds: bitstream programming plus XRT
/// context/buffer initialization (measured U280 deployments take on the
/// order of ten seconds). Dominant for the small Table-I datasets, which
/// is why the paper's Fig. 7 speedups *grow* with dataset size
/// (31× on PXD001511 → 54× on PXD000561 against GLEAMS).
pub const FPGA_SETUP_S: f64 = 12.0;

/// U280 board power while kernels are active, in watts (XRT power reports
/// for HBM designs; the source of the paper's energy-efficiency edge).
pub const FPGA_ACTIVE_W: f64 = 45.0;

/// U280 board idle power in watts.
pub const FPGA_IDLE_W: f64 = 10.0;

/// Host CPU package power under load (Intel RAPL, 12-core server), watts.
pub const CPU_ACTIVE_W: f64 = 120.0;

/// Host power attributable to SpecHD's orchestration, watts. The host
/// mostly sleeps on DMA completions, so RAPL attributes only a small
/// increment above idle; keeping this low is what yields the paper's
/// 14–31× end-to-end energy advantage (Fig. 9a).
pub const HOST_ORCHESTRATION_W: f64 = 15.0;

/// NVIDIA RTX 3090 sustained compute power (nvidia-smi), watts.
pub const GPU_ACTIVE_W: f64 = 320.0;

/// Post-top-k bytes per spectrum shipped over P2P: k peaks × (8 B m/z +
/// 4 B intensity) + header. With k = 50 this is ≈ 616 B.
pub fn preprocessed_bytes_per_spectrum(top_k: usize) -> f64 {
    (top_k * 12 + 16) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msas_bandwidth_reproduces_table1_rows() {
        // (bytes, seconds) from Table I.
        let rows: [(f64, f64); 5] = [
            (5.6e9, 1.79),
            (25e9, 8.22),
            (54e9, 18.44),
            (87e9, 28.53),
            (131e9, 43.38),
        ];
        for (bytes, secs) in rows {
            let model_t = MSAS_SETUP_S + bytes / MSAS_BANDWIDTH_BPS;
            let err = (model_t - secs).abs() / secs;
            assert!(
                err < 0.08,
                "{bytes} B: model {model_t:.2}s vs paper {secs}s"
            );
        }
    }

    #[test]
    fn msas_power_reproduces_table1_energy() {
        let rows: [(f64, f64); 5] = [
            (1.79, 17.38),
            (8.22, 77.27),
            (18.44, 166.53),
            (28.53, 268.22),
            (43.38, 382.62),
        ];
        for (secs, joules) in rows {
            let model_e = MSAS_POWER_W * secs;
            let err = (model_e - joules).abs() / joules;
            assert!(
                err < 0.08,
                "{secs}s: model {model_e:.1}J vs paper {joules}J"
            );
        }
    }

    #[test]
    fn preprocessed_bytes_sane() {
        let b = preprocessed_bytes_per_spectrum(50);
        assert!(b > 500.0 && b < 1000.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn p2p_beats_host_bounce() {
        // Guards the calibration tables: P2P must stay strictly faster
        // than the host-bounce path or every DSE conclusion inverts.
        assert!(P2P_BANDWIDTH_BPS > HOST_BOUNCE_BANDWIDTH_BPS);
    }
}
