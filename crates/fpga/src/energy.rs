//! Device power models (the paper measures with Intel RAPL, nvidia-smi and
//! Xilinx XRT; these are the corresponding model constants).

use crate::calib;

/// Power model covering every device class in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// FPGA board power while kernels run (XRT), watts.
    pub fpga_active_w: f64,
    /// FPGA board idle power, watts.
    pub fpga_idle_w: f64,
    /// Host CPU package power under full load (RAPL), watts.
    pub cpu_active_w: f64,
    /// Host power during orchestration-only phases, watts.
    pub host_orchestration_w: f64,
    /// GPU sustained power (nvidia-smi), watts.
    pub gpu_active_w: f64,
    /// MSAS + SSD active power, watts.
    pub msas_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            fpga_active_w: calib::FPGA_ACTIVE_W,
            fpga_idle_w: calib::FPGA_IDLE_W,
            cpu_active_w: calib::CPU_ACTIVE_W,
            host_orchestration_w: calib::HOST_ORCHESTRATION_W,
            gpu_active_w: calib::GPU_ACTIVE_W,
            msas_w: calib::MSAS_POWER_W,
        }
    }
}

impl PowerModel {
    /// Energy in joules for `seconds` of FPGA kernel activity.
    pub fn fpga_energy(&self, seconds: f64) -> f64 {
        self.fpga_active_w * seconds
    }

    /// Energy in joules for `seconds` of full-load CPU work.
    pub fn cpu_energy(&self, seconds: f64) -> f64 {
        self.cpu_active_w * seconds
    }

    /// Energy in joules for `seconds` of GPU work.
    pub fn gpu_energy(&self, seconds: f64) -> f64 {
        self.gpu_active_w * seconds
    }

    /// Energy in joules for `seconds` of host orchestration.
    pub fn orchestration_energy(&self, seconds: f64) -> f64 {
        self.host_orchestration_w * seconds
    }

    /// Energy in joules for `seconds` of MSAS preprocessing.
    pub fn msas_energy(&self, seconds: f64) -> f64 {
        self.msas_w * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_cheaper_than_cpu_and_gpu() {
        let p = PowerModel::default();
        assert!(p.fpga_active_w < p.cpu_active_w);
        assert!(p.fpga_active_w < p.gpu_active_w);
    }

    #[test]
    fn energies_linear_in_time() {
        let p = PowerModel::default();
        assert!((p.fpga_energy(10.0) - 10.0 * p.fpga_active_w).abs() < 1e-12);
        assert!((p.gpu_energy(2.0) / p.gpu_energy(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn msas_power_matches_table1_calibration() {
        let p = PowerModel::default();
        // 43.38 s at MSAS power ≈ 382.6 J (Table I, row 5).
        let e = p.msas_energy(43.38);
        assert!((e - 382.62).abs() / 382.62 < 0.05, "energy {e}");
    }
}
