//! Deterministic pseudo-random number generation for the SpecHD reproduction.
//!
//! Every stochastic component in the workspace (hypervector item memories,
//! synthetic spectrum generation, baseline hashing schemes, ...) draws from
//! the generators in this crate rather than from an external RNG crate. This
//! guarantees that experiment outputs are bit-reproducible across machines
//! and immune to upstream RNG-algorithm changes.
//!
//! The crate provides two generators:
//!
//! * [`SplitMix64`] — a tiny, fast generator used for seeding and for
//!   cheap one-shot hashing tasks.
//! * [`Xoshiro256StarStar`] — the workhorse generator with a 256-bit state,
//!   used everywhere bulk randomness is needed.
//!
//! and a set of samplers layered on top of [`Rng`]: uniform ranges,
//! [`Rng::normal`] (Box–Muller), [`Rng::zipf`], [`Rng::poisson`] and
//! Fisher–Yates [`shuffle`].
//!
//! # Examples
//!
//! ```
//! use spechd_rng::{Rng, Xoshiro256StarStar};
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let x = rng.next_f64();          // uniform in [0, 1)
//! let k = rng.range_usize(0, 10);  // uniform in [0, 10)
//! assert!((0.0..1.0).contains(&x));
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod samplers;

pub use samplers::{Poisson, Zipf};

/// Core trait implemented by every generator in this crate.
///
/// Only [`Rng::next_u64`] is required; all other draws are derived from it
/// with standard, bias-free constructions.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    ///
    /// Uses the 53 high bits so every representable value is equally likely.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f32` in `[0, 1)`.
    fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniformly distributed boolean.
    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns `true` with probability `p` (values outside `[0, 1]` saturate).
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniform `u64` in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 requires a non-zero bound");
        // Lemire's nearly-divisionless method with rejection to remove bias.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize requires lo < hi (got {lo}..{hi})");
        lo + self.bounded_u64((hi - lo) as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a standard normal draw via the Box–Muller transform.
    fn normal_std(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a normal draw with the given `mean` and standard deviation.
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal_std()
    }

    /// Returns a log-normal draw where the underlying normal has the given
    /// `mu` and `sigma`.
    fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Draws from `Zipf(n, s)`: an integer in `[1, n]` with
    /// P(k) proportional to `k^-s`. Convenience wrapper over [`Zipf`].
    fn zipf(&mut self, n: usize, s: f64) -> usize
    where
        Self: Sized,
    {
        Zipf::new(n, s).sample(self)
    }

    /// Draws from a Poisson distribution with rate `lambda`.
    /// Convenience wrapper over [`Poisson`].
    fn poisson(&mut self, lambda: f64) -> u64
    where
        Self: Sized,
    {
        Poisson::new(lambda).sample(self)
    }

    /// Picks a uniformly random element from a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T
    where
        Self: Sized,
    {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.range_usize(0, items.len())]
    }
}

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`], and as a cheap standalone generator for hashing.
///
/// # Examples
///
/// ```
/// use spechd_rng::{Rng, SplitMix64};
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x9E37_79B9_7F4A_7C15)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** generator (Blackman & Vigna 2018).
///
/// 256-bit state, period 2^256 − 1, excellent statistical quality; the
/// default bulk generator for the workspace.
///
/// # Examples
///
/// ```
/// use spechd_rng::{Rng, Xoshiro256StarStar};
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
/// let mut rng2 = Xoshiro256StarStar::seed_from_u64(1);
/// let again: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
/// assert_eq!(first, again);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` through [`SplitMix64`],
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is a fixed point; SplitMix64 cannot produce four
        // consecutive zeros in practice, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Creates a generator directly from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (a degenerate fixed point).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro256** state must be non-zero");
        Self { s }
    }

    /// Equivalent to 2^128 `next_u64` calls; used to derive statistically
    /// independent streams for parallel workers from one seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_6F03_1CBD_7AE3,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Returns an independent generator for worker `index`, derived by
    /// jumping `index + 1` times from a copy of `self`.
    pub fn stream(&self, index: usize) -> Self {
        let mut child = self.clone();
        for _ in 0..=index {
            child.jump();
        }
        child
    }
}

impl Default for Xoshiro256StarStar {
    fn default() -> Self {
        Self::seed_from_u64(0)
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Shuffles a slice in place with the Fisher–Yates algorithm.
///
/// # Examples
///
/// ```
/// use spechd_rng::{shuffle, Xoshiro256StarStar};
/// let mut v: Vec<u32> = (0..10).collect();
/// let mut rng = Xoshiro256StarStar::seed_from_u64(3);
/// shuffle(&mut v, &mut rng);
/// let mut sorted = v.clone();
/// sorted.sort();
/// assert_eq!(sorted, (0..10).collect::<Vec<_>>());
/// ```
pub fn shuffle<T, R: Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.range_usize(0, i + 1);
        items.swap(i, j);
    }
}

/// Samples `k` distinct indices from `[0, n)` (a uniform k-subset), returned
/// in ascending order. Uses Floyd's algorithm, O(k) expected draws.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_indices<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct items from {n}");
    let mut chosen = std::collections::BTreeSet::new();
    for j in n - k..n {
        let t = rng.range_usize(0, j + 1);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        let mut rng2 = SplitMix64::new(0);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds() {
        let mut a = Xoshiro256StarStar::seed_from_u64(9);
        let mut b = Xoshiro256StarStar::seed_from_u64(9);
        let mut c = Xoshiro256StarStar::seed_from_u64(10);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn bounded_u64_never_exceeds_bound() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(77);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..1000 {
                assert!(rng.bounded_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_u64_covers_small_range() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.bounded_u64(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of [0,5) should appear");
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn bounded_u64_zero_bound_panics() {
        let mut rng = SplitMix64::new(1);
        rng.bounded_u64(0);
    }

    #[test]
    fn range_usize_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(12);
        for _ in 0..1000 {
            let v = rng.range_usize(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(100);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn jump_produces_disjoint_streams() {
        let base = Xoshiro256StarStar::seed_from_u64(1);
        let mut s0 = base.stream(0);
        let mut s1 = base.stream(1);
        let v0: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let v1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_ne!(v0, v1);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        for _ in 0..100 {
            let s = sample_indices(50, 10, &mut rng);
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn sample_indices_full_set() {
        let mut rng = SplitMix64::new(9);
        let s = sample_indices(5, 5, &mut rng);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn choose_returns_member() {
        let items = [10, 20, 30];
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
