//! Non-uniform distribution samplers built on top of [`Rng`].

use crate::Rng;

/// Zipf distribution over `{1, ..., n}` with exponent `s`:
/// `P(k) ∝ k^-s`.
///
/// Used to model mass-spectrometry cluster-size distributions, where a few
/// highly abundant peptides generate many replicate spectra and most
/// peptides generate few (the long tail observed in PRIDE datasets).
///
/// Sampling uses rejection-inversion (Hörmann & Derflinger 1996): the
/// probability bar of each integer `k` is embedded in the corresponding slab
/// of the continuous envelope `x^-s`, so a uniform draw on the transformed
/// axis either lands in the bar (accept) or is retried. Expected cost is
/// O(1) per draw for any `n` and any `s > 0`.
///
/// # Examples
///
/// ```
/// use spechd_rng::{Xoshiro256StarStar, Zipf};
/// let zipf = Zipf::new(1000, 1.2);
/// let mut rng = Xoshiro256StarStar::seed_from_u64(0);
/// let k = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&k));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: usize,
    s: f64,
    h_lo: f64,
    h_hi: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `{1, ..., n}` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `s <= 0`, or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf requires n > 0");
        assert!(s > 0.0 && s.is_finite(), "Zipf requires finite s > 0");
        let mut z = Self {
            n,
            s,
            h_lo: 0.0,
            h_hi: 0.0,
        };
        z.h_lo = z.h(0.5);
        z.h_hi = z.h(n as f64 + 0.5);
        z
    }

    /// Number of ranks `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Exponent `s`.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Antiderivative of the envelope `x^-s`, increasing on `x > 0`.
    fn h(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            x.powf(1.0 - self.s) / (1.0 - self.s)
        }
    }

    fn h_inv(&self, u: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            u.exp()
        } else {
            (u * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draws one rank in `[1, n]`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        loop {
            let u = self.h_lo + rng.next_f64() * (self.h_hi - self.h_lo);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // The bar of integer k (mass k^-s) occupies the top of the slab
            // [H(k-1/2), H(k+1/2)]; midpoint rule on the convex envelope
            // guarantees the bar fits, so this accept test is exact.
            if u >= self.h(k + 0.5) - k.powf(-self.s) {
                return k as usize;
            }
        }
    }
}

/// Poisson distribution with rate `lambda`.
///
/// Uses Knuth's multiplication method for `lambda < 30` and a normal
/// approximation with rounding for larger rates, which is accurate to well
/// under one count for the peak-count models it serves.
///
/// # Examples
///
/// ```
/// use spechd_rng::{Poisson, Xoshiro256StarStar};
/// let p = Poisson::new(4.0);
/// let mut rng = Xoshiro256StarStar::seed_from_u64(0);
/// let _count = p.sample(&mut rng);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson sampler with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite or is negative.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "Poisson requires lambda >= 0"
        );
        Self { lambda }
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one count.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until falling below e^-lambda.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let draw = rng.normal(self.lambda, self.lambda.sqrt());
            draw.round().max(0.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256StarStar;

    #[test]
    fn zipf_in_range() {
        let zipf = Zipf::new(100, 1.1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn zipf_rank_one_is_mode() {
        let zipf = Zipf::new(50, 1.5);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut counts = vec![0usize; 51];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let max_rank = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(r, _)| r)
            .unwrap();
        assert_eq!(max_rank, 1, "rank 1 must be the most frequent");
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[5]);
    }

    #[test]
    fn zipf_ratio_matches_theory() {
        // P(1)/P(2) should be close to 2^s.
        let s = 1.0;
        let zipf = Zipf::new(1000, s);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let (mut c1, mut c2) = (0.0f64, 0.0f64);
        for _ in 0..200_000 {
            match zipf.sample(&mut rng) {
                1 => c1 += 1.0,
                2 => c2 += 1.0,
                _ => {}
            }
        }
        let ratio = c1 / c2;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn zipf_s_equal_one_supported() {
        let zipf = Zipf::new(10, 1.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        for _ in 0..1000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=10).contains(&k));
        }
    }

    #[test]
    fn zipf_n_one_always_one() {
        let zipf = Zipf::new(1, 2.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn zipf_high_exponent_concentrates_mass() {
        let zipf = Zipf::new(100, 3.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let ones = (0..20_000).filter(|_| zipf.sample(&mut rng) == 1).count();
        // With s=3, P(1) = 1/zeta(3 truncated) ~ 0.83.
        let freq = ones as f64 / 20_000.0;
        assert!(freq > 0.75, "freq {freq}");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zipf_zero_n_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn poisson_mean_small_lambda() {
        let p = Poisson::new(4.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_large_lambda() {
        let p = Poisson::new(80.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 80.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let p = Poisson::new(0.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        assert_eq!(p.sample(&mut rng), 0);
    }
}
