//! Microbenchmarks of the HDC primitives the FPGA kernels
//! accelerate: encoding throughput, XOR binding and Hamming distance.
use spechd_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spechd_hdc::{distance, BinaryHypervector, EncoderConfig, IdLevelEncoder};
use spechd_rng::{Rng, Xoshiro256StarStar};
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let encoder = IdLevelEncoder::new(EncoderConfig::default());
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    let peaks: Vec<(f64, f64)> = (0..50)
        .map(|_| (rng.range_f64(200.0, 2000.0), rng.next_f64()))
        .collect();
    let mut group = c.benchmark_group("encode");
    group.throughput(Throughput::Elements(1));
    group.bench_function("id_level_50_peaks_d2048", |b| {
        b.iter(|| black_box(encoder.encode(black_box(&peaks))))
    });
    group.finish();
}

fn bench_hamming(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(2);
    let mut group = c.benchmark_group("hamming");
    for dim in [1024usize, 2048, 4096] {
        let a = BinaryHypervector::random(dim, &mut rng);
        let b = BinaryHypervector::random(dim, &mut rng);
        group.throughput(Throughput::Bytes((dim / 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| black_box(black_box(&a).hamming(black_box(&b))))
        });
    }
    group.finish();
}

fn bench_pairwise(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    let hvs: Vec<BinaryHypervector> = (0..256)
        .map(|_| BinaryHypervector::random(2048, &mut rng))
        .collect();
    let mut group = c.benchmark_group("pairwise_condensed");
    group.throughput(Throughput::Elements((256 * 255 / 2) as u64));
    group.bench_function("n256_d2048", |b| {
        b.iter(|| black_box(distance::pairwise_condensed(black_box(&hvs))))
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_hamming, bench_pairwise);
criterion_main!(benches);
