//! Benchmark of the full SpecHD pipeline on synthetic runs.
use spechd_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spechd_core::{SpecHd, SpecHdConfig};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("spechd_pipeline");
    group.sample_size(10);
    for n in [250usize, 1000] {
        let ds = SyntheticGenerator::new(SyntheticConfig {
            num_spectra: n,
            num_peptides: n / 5,
            seed: 5,
            ..SyntheticConfig::default()
        })
        .generate();
        let spechd = SpecHd::new(SpecHdConfig::default());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
            b.iter(|| black_box(spechd.run(black_box(ds))))
        });
    }
    group.finish();
}

/// The standalone packed encoding stage (spectra → contiguous HvPack),
/// which `run` now uses internally.
fn bench_encode_packed(c: &mut Criterion) {
    let n = 1000;
    let ds = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: n,
        num_peptides: n / 5,
        seed: 6,
        ..SyntheticConfig::default()
    })
    .generate();
    let spechd = SpecHd::new(SpecHdConfig::default());
    let mut group = c.benchmark_group("encode_dataset_packed");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
        b.iter(|| black_box(spechd.encode_dataset_packed(black_box(ds))))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_encode_packed);
criterion_main!(benches);
