//! Benchmarks of the preprocessing stages (filter, bitonic
//! top-k, bucketing) the MSAS accelerator implements.
use spechd_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_preprocess::{topk, PrecursorBucketer, SpectraFilter};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let ds = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 500,
        num_peptides: 100,
        seed: 4,
        ..SyntheticConfig::default()
    })
    .generate();
    let filter = SpectraFilter::default();
    let mut group = c.benchmark_group("preprocess");
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.bench_function("filter_500", |b| {
        b.iter(|| {
            for s in ds.spectra() {
                black_box(filter.apply(black_box(s)));
            }
        })
    });
    group.bench_function("bucketize_500", |b| {
        let bucketer = PrecursorBucketer::new(1.0);
        b.iter(|| black_box(bucketer.bucketize(black_box(ds.spectra()))))
    });
    group.finish();

    let peaks = ds.spectrum(0).peaks().to_vec();
    let mut topk_group = c.benchmark_group("topk");
    for k in [20usize, 50] {
        topk_group.bench_with_input(BenchmarkId::new("bitonic", k), &k, |b, &k| {
            b.iter(|| black_box(topk::bitonic_top_k(black_box(&peaks), k)))
        });
        topk_group.bench_with_input(BenchmarkId::new("quickselect", k), &k, |b, &k| {
            b.iter(|| black_box(topk::select_top_k(black_box(&peaks), k)))
        });
    }
    topk_group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
