//! Benchmarks of the contiguous hypervector store and the tiled packed
//! distance kernels against the scalar per-pair reference.
use spechd_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spechd_hdc::distance::{self, PackedDistanceEngine};
use spechd_hdc::{BinaryHypervector, EncoderConfig, HvPack, IdLevelEncoder};
use spechd_rng::{Rng, Xoshiro256StarStar};
use std::hint::black_box;

const DIM: usize = 2048;

fn random_pack(n: usize, seed: u64) -> (Vec<BinaryHypervector>, HvPack) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let hvs: Vec<BinaryHypervector> = (0..n)
        .map(|_| BinaryHypervector::random(DIM, &mut rng))
        .collect();
    let pack = HvPack::from_hypervectors(DIM, &hvs);
    (hvs, pack)
}

fn bench_pairwise_scalar_vs_packed(c: &mut Criterion) {
    let n = 256;
    let (hvs, pack) = random_pack(n, 1);
    let mut group = c.benchmark_group("pairwise_condensed");
    group.sample_size(20);
    group.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
    group.bench_function("scalar_n256_d2048", |b| {
        b.iter(|| black_box(distance::pairwise_condensed(black_box(&hvs))))
    });
    let tiled = PackedDistanceEngine::new().threads(1);
    group.bench_function("packed_tiled_1t_n256_d2048", |b| {
        b.iter(|| black_box(tiled.pairwise_condensed(black_box(&pack))))
    });
    let parallel = PackedDistanceEngine::new();
    group.bench_function("packed_tiled_auto_n256_d2048", |b| {
        b.iter(|| black_box(parallel.pairwise_condensed(black_box(&pack))))
    });
    group.finish();
}

fn bench_one_to_many(c: &mut Criterion) {
    let n = 4096;
    let (hvs, pack) = random_pack(n, 2);
    let query = hvs[0].clone();
    let mut group = c.benchmark_group("one_to_many");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("scalar_n4096_d2048", |b| {
        b.iter(|| black_box(distance::one_to_many(black_box(&query), black_box(&hvs))))
    });
    group.bench_function("packed_n4096_d2048", |b| {
        b.iter(|| {
            black_box(distance::one_to_many_packed(
                black_box(&query),
                black_box(&pack),
            ))
        })
    });
    group.finish();
}

fn bench_neighbors_within(c: &mut Criterion) {
    let n = 512;
    let (_, pack) = random_pack(n, 3);
    let mut group = c.benchmark_group("neighbors_within");
    group.sample_size(20);
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_with_input(
        BenchmarkId::new("eps983_n512_d2048", n),
        &pack,
        |b, pack| b.iter(|| black_box(distance::neighbors_within(black_box(pack), 983))),
    );
    group.finish();
}

fn bench_batch_encode(c: &mut Criterion) {
    let encoder = IdLevelEncoder::new(EncoderConfig::default());
    let mut rng = Xoshiro256StarStar::seed_from_u64(4);
    let spectra: Vec<Vec<(f64, f64)>> = (0..64)
        .map(|_| {
            (0..50)
                .map(|_| (rng.range_f64(200.0, 2000.0), rng.next_f64()))
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("encode_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(64));
    group.bench_function("boxed_64x50_d2048", |b| {
        b.iter(|| black_box(encoder.encode_batch(black_box(&spectra))))
    });
    group.bench_function("packed_64x50_d2048", |b| {
        b.iter(|| black_box(encoder.encode_batch_packed(black_box(&spectra))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pairwise_scalar_vs_packed,
    bench_one_to_many,
    bench_neighbors_within,
    bench_batch_encode,
);
criterion_main!(benches);
