//! Benchmarks of NN-chain vs naive HAC scaling (the Fig. 2
//! mechanism) and DBSCAN — matrix-backed vs packed-neighborhood.
use spechd_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spechd_cluster::{
    dbscan, dbscan_packed, naive_hac, nn_chain, CondensedMatrix, DbscanParams, Linkage,
};
use spechd_hdc::{BinaryHypervector, HvPack};
use spechd_rng::{Rng, Xoshiro256StarStar};
use std::hint::black_box;

fn random_matrix(n: usize, seed: u64) -> CondensedMatrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    CondensedMatrix::from_fn(n, |_, _| rng.range_f64(1.0, 1000.0))
}

fn bench_hac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hac");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let m = random_matrix(n, n as u64);
        group.bench_with_input(BenchmarkId::new("nn_chain", n), &m, |b, m| {
            b.iter(|| black_box(nn_chain(black_box(m), Linkage::Complete)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &m, |b, m| {
            b.iter(|| black_box(naive_hac(black_box(m), Linkage::Complete)))
        });
    }
    group.finish();
}

fn bench_dbscan(c: &mut Criterion) {
    let m = random_matrix(400, 9);
    c.bench_function("dbscan_n400", |b| {
        b.iter(|| {
            black_box(dbscan(
                black_box(&m),
                DbscanParams {
                    eps: 300.0,
                    min_pts: 2,
                },
            ))
        })
    });
}

/// Matrix-backed vs packed DBSCAN over the same encoded hypervectors:
/// the packed path runs the tiled epsilon-neighborhood kernel and never
/// materializes the O(n²) matrix.
fn bench_dbscan_packed_vs_matrix(c: &mut Criterion) {
    let dim = 2048;
    let mut rng = Xoshiro256StarStar::seed_from_u64(10);
    let hvs: Vec<BinaryHypervector> = (0..400)
        .map(|_| BinaryHypervector::random(dim, &mut rng))
        .collect();
    let pack = HvPack::from_hypervectors(dim, &hvs);
    let params = DbscanParams {
        eps: 983.0,
        min_pts: 2,
    };
    let mut group = c.benchmark_group("dbscan_hv_n400_d2048");
    group.sample_size(10);
    group.bench_function("matrix_backed", |b| {
        b.iter(|| {
            let m = CondensedMatrix::from_pack(black_box(&pack));
            black_box(dbscan(&m, params))
        })
    });
    group.bench_function("packed_neighbors", |b| {
        b.iter(|| black_box(dbscan_packed(black_box(&pack), params)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hac,
    bench_dbscan,
    bench_dbscan_packed_vs_matrix
);
criterion_main!(benches);
