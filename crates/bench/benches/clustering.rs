//! Benchmarks of NN-chain vs naive HAC scaling (the Fig. 2
//! mechanism) and DBSCAN.
use spechd_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spechd_cluster::{dbscan, naive_hac, nn_chain, CondensedMatrix, DbscanParams, Linkage};
use spechd_rng::{Rng, Xoshiro256StarStar};
use std::hint::black_box;

fn random_matrix(n: usize, seed: u64) -> CondensedMatrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    CondensedMatrix::from_fn(n, |_, _| rng.range_f64(1.0, 1000.0))
}

fn bench_hac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hac");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let m = random_matrix(n, n as u64);
        group.bench_with_input(BenchmarkId::new("nn_chain", n), &m, |b, m| {
            b.iter(|| black_box(nn_chain(black_box(m), Linkage::Complete)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &m, |b, m| {
            b.iter(|| black_box(naive_hac(black_box(m), Linkage::Complete)))
        });
    }
    group.finish();
}

fn bench_dbscan(c: &mut Criterion) {
    let m = random_matrix(400, 9);
    c.bench_function("dbscan_n400", |b| {
        b.iter(|| {
            black_box(dbscan(
                black_box(&m),
                DbscanParams {
                    eps: 300.0,
                    min_pts: 2,
                },
            ))
        })
    });
}

criterion_group!(benches, bench_hac, bench_dbscan);
criterion_main!(benches);
