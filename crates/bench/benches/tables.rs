//! Regenerates EVERY table and figure of the paper in one run; part of
//! `cargo bench --workspace` so the full evaluation is one command.
//! (harness = false: this is a reporting target, not a statistics run.)
use spechd_bench::*;

fn main() {
    print_table(
        "Table I: preprocessing performance (paper vs MSAS model)",
        &[
            "dataset",
            "sample",
            "#spectra",
            "size",
            "paper t(s)",
            "model t(s)",
            "paper E(J)",
            "model E(J)",
        ],
        &table1_rows(),
    );
    print_table(
        "Fig. 2: naive vs NN-chain HAC",
        &[
            "n",
            "naive cmp (M)",
            "chain cmp (M)",
            "naive (s)",
            "chain (s)",
            "speedup",
        ],
        &fig2_rows(&[100, 200, 400, 800]),
    );
    let (generator, dataset) = hard_dataset(1_500, 6);
    print_table(
        "Fig. 6a: linkage efficacy at ICR <= 1.5%",
        &[
            "linkage",
            "threshold",
            "clustered(%)",
            "ICR(%)",
            "completeness",
        ],
        &fig6a_rows(&dataset, 0.015),
    );
    print_table(
        "Fig. 6b: compression factor at D=2048",
        &["dataset", "raw size", "HV archive", "factor"],
        &fig6b_rows(),
    );
    print_table(
        "Fig. 7: end-to-end speedup over SpecHD=1",
        &[
            "dataset",
            "SpecHD (s)",
            "GLEAMS",
            "HyperSpec-HAC",
            "msCRUSH",
            "Falcon",
        ],
        &fig7_rows(),
    );
    print_table(
        "Fig. 8: standalone clustering, PXD000561",
        &["tool", "time (s)", "vs SpecHD"],
        &fig8_rows(),
    );
    print_table(
        "Fig. 9: energy on PXD000561",
        &[
            "tool",
            "e2e (J)",
            "e2e ratio",
            "clustering (J)",
            "clustering ratio",
        ],
        &fig9_rows(),
    );
    print_table(
        "Fig. 10: clustered ratio vs ICR",
        &["tool", "knob", "clustered(%)", "ICR(%)", "completeness"],
        &fig10_rows(&dataset),
    );
    let rows: Vec<Vec<String>> = fig11_overlap(&generator, &dataset)
        .iter()
        .map(|o| {
            vec![
                format!("{}+", o.charge),
                o.venn.total_a().to_string(),
                o.venn.total_b().to_string(),
                o.venn.total_c().to_string(),
                o.venn.abc.to_string(),
                format!("{:+.2}%", o.venn.a_vs_b_percent()),
            ]
        })
        .collect();
    print_table(
        "Fig. 11: unique peptides at 1% FDR (A=SpecHD, B=GLEAMS, C=HyperSpec)",
        &[
            "charge",
            "SpecHD",
            "GLEAMS",
            "HyperSpec",
            "all three",
            "vs GLEAMS",
        ],
        &rows,
    );
    print_table(
        "DSE Pareto front on PXD000561",
        &[
            "encoders",
            "cluster kernels",
            "MSAS channels",
            "p2p",
            "total (s)",
            "energy (J)",
        ],
        &dse_rows(),
    );
}
