//! Benchmark harness for the SpecHD reproduction.
//!
//! One function per table/figure of the paper computes the corresponding
//! rows; the `src/bin/*` binaries and the `tables` bench target print
//! them. Keeping the computation here lets the integration tests assert
//! on the same numbers the benchmarks report.
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table I | [`table1_rows`] | `table1_preprocessing` |
//! | Fig. 2 | [`fig2_rows`] | `fig2_nnchain_vs_naive` |
//! | Fig. 6a | [`fig6a_rows`] | `fig6_linkage` |
//! | Fig. 6b | [`fig6b_rows`] | `fig6_compression` |
//! | Fig. 7 | [`fig7_rows`] | `fig7_speedup` |
//! | Fig. 8 | [`fig8_rows`] | `fig8_standalone` |
//! | Fig. 9 | [`fig9_rows`] | `fig9_energy` |
//! | Fig. 10 | [`fig10_rows`] | `fig10_quality` |
//! | Fig. 11 | [`fig11_overlap`] | `fig11_overlap` |
//! | DSE (§I) | [`dse_rows`] | `dse_sweep` |

#![forbid(unsafe_code)]

pub mod harness;
pub mod kernel_bench;

use spechd_baselines::perf::ToolPerfModel;
use spechd_baselines::{
    ClusteringTool, Falcon, Gleams, GreedyCascade, HyperSpecDbscan, HyperSpecHac, MaRaCluster,
    MsCrush,
};
use spechd_cluster::{naive_hac, nn_chain, ClusterAssignment, CondensedMatrix, Linkage};
use spechd_core::{ClusteringEval, SpecHd, SpecHdConfig};
use spechd_fpga::{MsasModel, SystemConfig, SystemModel, WorkloadShape};
use spechd_ms::profiles::TABLE1;
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::SpectrumDataset;
use spechd_rng::{Rng, Xoshiro256StarStar};
use spechd_search::{filter_at_fdr, overlap, PeptideDatabase, SearchConfig, SearchEngine};

/// The reference labelled dataset used by quality experiments.
pub fn reference_dataset(num_spectra: usize, seed: u64) -> (SyntheticGenerator, SpectrumDataset) {
    let generator = SyntheticGenerator::new(SyntheticConfig {
        num_spectra,
        num_peptides: (num_spectra / 5).max(10),
        seed,
        ..SyntheticConfig::default()
    });
    let dataset = generator.generate();
    (generator, dataset)
}

/// The *hard* labelled dataset (confusable peptide families, heavy noise)
/// used by the Fig. 6a/10/11 quality-curve experiments — the regime where
/// the tools actually separate, mirroring real PRIDE data.
pub fn hard_dataset(num_spectra: usize, seed: u64) -> (SyntheticGenerator, SpectrumDataset) {
    let generator = SyntheticGenerator::new(SyntheticConfig::hard(num_spectra, seed));
    let dataset = generator.generate();
    (generator, dataset)
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Table I: preprocessing time and energy, paper vs model.
pub fn table1_rows() -> Vec<Vec<String>> {
    let msas = MsasModel::default();
    TABLE1
        .iter()
        .map(|p| {
            let t = msas.preprocess_time(p.bytes);
            let e = msas.preprocess_energy(p.bytes);
            vec![
                p.pride_id.to_string(),
                p.sample_type.to_string(),
                format!("{:.1}M", p.num_spectra as f64 / 1e6),
                format!("{:.1} GB", p.gigabytes()),
                format!("{:.2}", p.paper_pp_time_s),
                format!("{t:.2}"),
                format!("{:.1}", p.paper_pp_energy_j),
                format!("{e:.1}"),
            ]
        })
        .collect()
}

/// Fig. 2: naive vs NN-chain HAC — measured runtime and comparison counts
/// at several problem sizes.
pub fn fig2_rows(sizes: &[usize]) -> Vec<Vec<String>> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(2);
    sizes
        .iter()
        .map(|&n| {
            let m = CondensedMatrix::from_fn(n, |_, _| rng.range_f64(1.0, 1000.0));
            let t0 = std::time::Instant::now();
            let naive = naive_hac(&m, Linkage::Complete);
            let naive_s = t0.elapsed().as_secs_f64();
            let t1 = std::time::Instant::now();
            let chain = nn_chain(&m, Linkage::Complete);
            let chain_s = t1.elapsed().as_secs_f64();
            vec![
                n.to_string(),
                format!("{:.1}", naive.stats.comparisons as f64 / 1e6),
                format!("{:.1}", chain.stats.comparisons as f64 / 1e6),
                format!("{naive_s:.4}"),
                format!("{chain_s:.4}"),
                format!("{:.1}x", naive_s / chain_s.max(1e-12)),
            ]
        })
        .collect()
}

/// Fig. 6a: per-linkage clustered ratio and completeness at ≈1% ICR.
/// The threshold is tuned per linkage exactly as the paper tunes each
/// tool ("we fixed an incorrect clustering ratio at 1%").
pub fn fig6a_rows(dataset: &SpectrumDataset, icr_cap: f64) -> Vec<Vec<String>> {
    Linkage::ALL
        .iter()
        .map(|&linkage| {
            let (threshold, eval) = tune_spechd_threshold(dataset, linkage, icr_cap);
            vec![
                linkage.to_string(),
                format!("{threshold:.2}"),
                format!("{:.1}", eval.clustered_ratio * 100.0),
                format!("{:.2}", eval.incorrect_ratio * 100.0),
                format!("{:.3}", eval.completeness),
            ]
        })
        .collect()
}

/// Finds the loosest SpecHD threshold whose ICR stays below `icr_cap`,
/// returning it with the evaluation at that point.
pub fn tune_spechd_threshold(
    dataset: &SpectrumDataset,
    linkage: Linkage,
    icr_cap: f64,
) -> (f64, ClusteringEval) {
    let mut best: Option<(f64, ClusteringEval)> = None;
    for step in 4..=22 {
        let threshold = step as f64 * 0.02;
        let config = SpecHdConfig::builder()
            .linkage(linkage)
            .distance_threshold_fraction(threshold)
            .build();
        let outcome = SpecHd::new(config).run(dataset);
        let eval = outcome.evaluate(dataset);
        if eval.incorrect_ratio <= icr_cap {
            let better = best
                .as_ref()
                .map_or(true, |(_, b)| eval.clustered_ratio > b.clustered_ratio);
            if better {
                best = Some((threshold, eval));
            }
        }
    }
    best.unwrap_or_else(|| {
        let outcome = SpecHd::new(SpecHdConfig::default()).run(dataset);
        let eval = outcome.evaluate(dataset);
        (SpecHdConfig::default().distance_threshold_fraction, eval)
    })
}

/// Fig. 6b: hypervector compression factor per dataset at D=2048.
pub fn fig6b_rows() -> Vec<Vec<String>> {
    TABLE1
        .iter()
        .map(|p| {
            vec![
                p.pride_id.to_string(),
                format!("{:.1} GB", p.gigabytes()),
                format!("{:.2} GB", p.num_spectra as f64 * 256.0 / 1e9),
                format!("{:.0}x", p.compression_factor(2048)),
            ]
        })
        .collect()
}

/// Fig. 7: end-to-end runtime and speedup over SpecHD for every tool and
/// dataset.
pub fn fig7_rows() -> Vec<Vec<String>> {
    let model = SystemModel::new(SystemConfig::default());
    let mut rows = Vec::new();
    for (profile, shape) in TABLE1.iter().zip(WorkloadShape::table1()) {
        let spechd_s = model.end_to_end(&shape).total_s;
        let mut row = vec![profile.pride_id.to_string(), format!("{spechd_s:.0}")];
        for tool in ToolPerfModel::fig7_tools() {
            let t = tool.end_to_end_s(&shape);
            row.push(format!("{:.1}x", t / spechd_s));
        }
        rows.push(row);
    }
    rows
}

/// Fig. 8: standalone clustering of pre-encoded vectors, PXD000561.
pub fn fig8_rows() -> Vec<Vec<String>> {
    let model = SystemModel::new(SystemConfig::default());
    let shape = WorkloadShape::pxd000561();
    let spechd_s = model.standalone_clustering_time(&shape);
    let mut rows = vec![vec![
        "SpecHD".to_string(),
        format!("{spechd_s:.0}"),
        "1.0x".to_string(),
    ]];
    for tool in [
        ToolPerfModel::hyperspec_hac(),
        ToolPerfModel::gleams(),
        ToolPerfModel::mscrush(),
        ToolPerfModel::falcon(),
    ] {
        let t = tool.clustering_s(&shape);
        rows.push(vec![
            tool.name.to_string(),
            format!("{t:.0}"),
            format!("{:.1}x", t / spechd_s),
        ]);
    }
    rows
}

/// Fig. 9: energy efficiency vs the two HyperSpec flavours, end-to-end
/// and clustering-phase.
pub fn fig9_rows() -> Vec<Vec<String>> {
    let model = SystemModel::new(SystemConfig::default());
    let shape = WorkloadShape::pxd000561();
    let spechd_e2e = model.end_to_end_energy(&shape).total_j;
    let spechd_cluster = model.clustering_energy(&shape);
    let mut rows = vec![vec![
        "SpecHD".to_string(),
        format!("{spechd_e2e:.0}"),
        "1.0x".to_string(),
        format!("{spechd_cluster:.0}"),
        "1.0x".to_string(),
    ]];
    for tool in [
        ToolPerfModel::hyperspec_dbscan(),
        ToolPerfModel::hyperspec_hac(),
    ] {
        let e2e = tool.end_to_end_energy_j(&shape);
        let cl = tool.clustering_energy_j(&shape);
        rows.push(vec![
            tool.name.to_string(),
            format!("{e2e:.0}"),
            format!("{:.1}x", e2e / spechd_e2e),
            format!("{cl:.0}"),
            format!("{:.1}x", cl / spechd_cluster),
        ]);
    }
    rows
}

/// Fig. 10: (clustered ratio, ICR) operating points per tool across a
/// threshold sweep on one labelled dataset.
pub fn fig10_rows(dataset: &SpectrumDataset) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut push = |name: &str, knob: String, a: &ClusterAssignment| {
        let eval = ClusteringEval::compute(a.labels(), dataset.labels());
        rows.push(vec![
            name.to_string(),
            knob,
            format!("{:.1}", eval.clustered_ratio * 100.0),
            format!("{:.2}", eval.incorrect_ratio * 100.0),
            format!("{:.3}", eval.completeness),
        ]);
    };
    for t in [0.23, 0.26, 0.29, 0.32, 0.35] {
        let outcome = SpecHd::new(
            SpecHdConfig::builder()
                .distance_threshold_fraction(t)
                .build(),
        )
        .run(dataset);
        push(
            "SpecHD",
            format!("{t:.2}"),
            &outcome.assignment_full(dataset.len()),
        );
    }
    for t in [0.26, 0.30, 0.34] {
        let tool = HyperSpecHac {
            threshold_fraction: t,
            ..Default::default()
        };
        push(tool.name(), format!("{t:.2}"), &tool.cluster(dataset));
    }
    for eps in [0.20, 0.25, 0.30] {
        let tool = HyperSpecDbscan {
            eps_fraction: eps,
            ..Default::default()
        };
        push(tool.name(), format!("{eps:.2}"), &tool.cluster(dataset));
    }
    for eps in [0.10, 0.16, 0.22] {
        let tool = Falcon {
            eps,
            ..Default::default()
        };
        push(tool.name(), format!("{eps:.2}"), &tool.cluster(dataset));
    }
    for sim in [0.92, 0.86, 0.80] {
        let tool = MsCrush {
            min_similarity: sim,
            ..Default::default()
        };
        push(tool.name(), format!("{sim:.2}"), &tool.cluster(dataset));
    }
    for thr in [1e-5, 1e-4, 1e-3] {
        let tool = MaRaCluster {
            threshold: thr,
            ..Default::default()
        };
        push(tool.name(), format!("{thr:.0e}"), &tool.cluster(dataset));
    }
    for thr in [0.40, 0.52, 0.64] {
        let tool = Gleams {
            threshold: thr,
            ..Default::default()
        };
        push(tool.name(), format!("{thr:.2}"), &tool.cluster(dataset));
    }
    {
        let tool = GreedyCascade::spectra_cluster();
        push(tool.name(), "default".into(), &tool.cluster(dataset));
        let tool = GreedyCascade::mscluster();
        push(tool.name(), "default".into(), &tool.cluster(dataset));
    }
    rows
}

/// Result of the Fig. 11 experiment for one precursor charge: unique
/// peptide identifications from each tool's consensus spectra.
#[derive(Debug, Clone)]
pub struct OverlapOutcome {
    /// Precursor charge this row covers.
    pub charge: u8,
    /// Venn region counts (A = SpecHD, B = GLEAMS, C = HyperSpec).
    pub venn: overlap::Venn3,
}

/// Fig. 11: identify peptides from each tool's consensus spectra at 1%
/// FDR and intersect the sets, split by precursor charge.
pub fn fig11_overlap(
    generator: &SyntheticGenerator,
    dataset: &SpectrumDataset,
) -> Vec<OverlapOutcome> {
    let db = PeptideDatabase::build(generator.peptide_library());
    let engine = SearchEngine::new(db, SearchConfig::default());

    let spechd_consensus = {
        let outcome = SpecHd::new(SpecHdConfig::default()).run(dataset);
        outcome.consensus().to_vec()
    };
    let gleams_consensus = representatives(&Gleams::default().cluster(dataset), dataset);
    let hyperspec_consensus = representatives(&HyperSpecHac::default().cluster(dataset), dataset);

    let identify = |consensus: &[usize], charge: u8| -> Vec<String> {
        let spectra: Vec<_> = consensus
            .iter()
            .map(|&i| dataset.spectrum(i).clone())
            .filter(|s| s.precursor().charge() == charge)
            .collect();
        let psms: Vec<_> = engine
            .search_dataset(&spectra)
            .into_iter()
            .flatten()
            .collect();
        let accepted = filter_at_fdr(&psms, 0.01);
        accepted
            .iter()
            .map(|&i| psms[i].peptide.sequence().to_string())
            .collect()
    };

    [2u8, 3u8]
        .iter()
        .map(|&charge| {
            let a = identify(&spechd_consensus, charge);
            let b = identify(&gleams_consensus, charge);
            let c = identify(&hyperspec_consensus, charge);
            OverlapOutcome {
                charge,
                venn: overlap::venn3(
                    a.iter().map(String::as_str),
                    b.iter().map(String::as_str),
                    c.iter().map(String::as_str),
                ),
            }
        })
        .collect()
}

/// Picks a representative spectrum per cluster: the member with the
/// highest total ion current (a cheap consensus proxy for tools that do
/// not expose medoids).
pub fn representatives(assignment: &ClusterAssignment, dataset: &SpectrumDataset) -> Vec<usize> {
    assignment
        .clusters()
        .iter()
        .map(|members| {
            members
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    dataset
                        .spectrum(a)
                        .total_ion_current()
                        .total_cmp(&dataset.spectrum(b).total_ion_current())
                })
                .expect("clusters are non-empty")
        })
        .collect()
}

/// DSE sweep rows (time, energy, feasibility per configuration).
pub fn dse_rows() -> Vec<Vec<String>> {
    let shape = WorkloadShape::pxd000561();
    let points = spechd_fpga::dse::explore(&shape, &spechd_fpga::dse::DseSweep::default());
    let front = spechd_fpga::dse::pareto_front(&points);
    front
        .iter()
        .map(|p| {
            vec![
                p.encoders.to_string(),
                p.cluster_kernels.to_string(),
                p.msas_channels.to_string(),
                p.p2p.to_string(),
                format!("{:.1}", p.total_s),
                format!("{:.0}", p.total_j),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_rows() {
        assert_eq!(table1_rows().len(), 5);
    }

    #[test]
    fn fig2_speedup_grows_with_n() {
        let rows = fig2_rows(&[60, 240]);
        assert_eq!(rows.len(), 2);
        let naive_small: f64 = rows[0][1].parse().unwrap();
        let naive_large: f64 = rows[1][1].parse().unwrap();
        assert!(
            naive_large > naive_small * 10.0,
            "naive comparisons grow cubically"
        );
    }

    #[test]
    fn fig6b_factors_span_paper_range() {
        let rows = fig6b_rows();
        let factors: Vec<f64> = rows
            .iter()
            .map(|r| r[3].trim_end_matches('x').parse::<f64>().unwrap())
            .collect();
        assert!(factors.iter().cloned().fold(f64::INFINITY, f64::min) < 30.0);
        assert!(factors.iter().cloned().fold(0.0, f64::max) > 80.0);
    }

    #[test]
    fn fig7_has_all_datasets() {
        assert_eq!(fig7_rows().len(), 5);
    }

    #[test]
    fn representatives_one_per_cluster() {
        let (_, ds) = reference_dataset(120, 3);
        let a = HyperSpecHac::default().cluster(&ds);
        let reps = representatives(&a, &ds);
        assert_eq!(reps.len(), a.num_clusters());
    }
}
