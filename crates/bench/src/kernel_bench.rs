//! Machine-readable kernel benchmarking shared by the `bench_pr*` bins
//! and the `bench_gate` regression comparator.
//!
//! A *kernel record* is one measured data point:
//! `{kernel, n, dim, threads, ns_per_op}`. The `bench_pr4` / `bench_pr5`
//! binaries write arrays of them (`BENCH_pr4.json`, `BENCH_pr5.json`);
//! `bench_gate` reads two such files and fails on regressions. Reading and
//! writing live together here so the two sides cannot drift apart — and
//! because the workspace is std-only, the JSON codec is hand-rolled for
//! exactly this shape.

use std::io::Write as _;
use std::time::Instant;

/// One measured kernel data point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRecord {
    /// Kernel name, unique within a file.
    pub kernel: String,
    /// Problem size (spectra / hypervectors).
    pub n: usize,
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Worker threads the kernel ran with (informational: machines
    /// differ, so the gate never matches on it).
    pub threads: usize,
    /// Median wall-clock nanoseconds of one full kernel invocation.
    pub ns_per_op: u128,
}

/// A named, thread-annotated benchmark body: `(name, threads, body)`.
pub type Kernel<'a> = (&'static str, usize, Box<dyn FnMut() + 'a>);

/// Measures all kernels with their samples interleaved round-robin, so
/// clock-speed drift on shared machines biases every kernel equally
/// instead of penalizing whichever ran last. Returns median ns per kernel.
pub fn measure_interleaved(samples: usize, kernels: &mut [Kernel<'_>]) -> Vec<u128> {
    let mut elapsed: Vec<Vec<u128>> = vec![Vec::with_capacity(samples); kernels.len()];
    // One warmup round, then `samples` timed rounds.
    for (_, _, f) in kernels.iter_mut() {
        f();
    }
    for _ in 0..samples {
        for (k, (_, _, f)) in kernels.iter_mut().enumerate() {
            let start = Instant::now();
            f();
            elapsed[k].push(start.elapsed().as_nanos());
        }
    }
    elapsed
        .into_iter()
        .map(|mut v| {
            v.sort_unstable();
            v[v.len() / 2]
        })
        .collect()
}

/// Serializes records as the `BENCH_pr*.json` array format.
pub fn to_json(records: &[KernelRecord]) -> String {
    let mut json = String::from("[\n");
    for (k, r) in records.iter().enumerate() {
        let comma = if k + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"n\": {}, \"dim\": {}, \"threads\": {}, \"ns_per_op\": {}}}{}\n",
            r.kernel, r.n, r.dim, r.threads, r.ns_per_op, comma
        ));
    }
    json.push_str("]\n");
    json
}

/// Writes records to `path` in the `BENCH_pr*.json` format.
///
/// # Panics
///
/// Panics on I/O errors — a bench run without its output is useless.
pub fn write_records(path: &str, records: &[KernelRecord]) {
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("create bench output {path}: {e}"));
    f.write_all(to_json(records).as_bytes())
        .unwrap_or_else(|e| panic!("write bench output {path}: {e}"));
}

/// Reads a `BENCH_pr*.json` file back into records.
pub fn read_records(path: &str) -> Result<Vec<KernelRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_records(&text).map_err(|e| format!("{path}: {e}"))
}

/// Parses the array-of-flat-objects JSON the writers emit. Tolerates
/// whitespace and field order, ignores unknown fields with scalar values.
pub fn parse_records(text: &str) -> Result<Vec<KernelRecord>, String> {
    let mut records = Vec::new();
    let mut rest = text.trim();
    rest = rest
        .strip_prefix('[')
        .ok_or("expected a JSON array")?
        .trim_end()
        .strip_suffix(']')
        .ok_or("unterminated JSON array")?
        .trim();
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',').trim();
        if rest.is_empty() {
            break;
        }
        let body_start = rest.strip_prefix('{').ok_or("expected an object")?;
        let end = body_start.find('}').ok_or("unterminated object")?;
        let body = &body_start[..end];
        records.push(parse_object(body)?);
        rest = body_start[end + 1..].trim();
    }
    Ok(records)
}

fn parse_object(body: &str) -> Result<KernelRecord, String> {
    let mut kernel: Option<String> = None;
    let mut n = None;
    let mut dim = None;
    let mut threads = None;
    let mut ns_per_op = None;
    for field in split_top_level_fields(body) {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("field without ':': {field}"))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "kernel" => {
                kernel = Some(
                    value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("kernel must be a string: {value}"))?
                        .to_string(),
                );
            }
            "n" => n = Some(parse_int(value, "n")?),
            "dim" => dim = Some(parse_int(value, "dim")?),
            "threads" => threads = Some(parse_int(value, "threads")?),
            "ns_per_op" => {
                ns_per_op = Some(
                    value
                        .parse::<u128>()
                        .map_err(|e| format!("ns_per_op: {e}"))?,
                );
            }
            _ => {} // unknown scalar field: ignore
        }
    }
    Ok(KernelRecord {
        kernel: kernel.ok_or("missing kernel")?,
        n: n.ok_or("missing n")?,
        dim: dim.ok_or("missing dim")?,
        threads: threads.ok_or("missing threads")?,
        ns_per_op: ns_per_op.ok_or("missing ns_per_op")?,
    })
}

fn parse_int(value: &str, key: &str) -> Result<usize, String> {
    value.parse::<usize>().map_err(|e| format!("{key}: {e}"))
}

/// Splits `a: 1, b: "x,y"` on commas outside string literals.
fn split_top_level_fields(body: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                fields.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        fields.push(&body[start..]);
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<KernelRecord> {
        vec![
            KernelRecord {
                kernel: "pairwise_condensed_scalar".into(),
                n: 2000,
                dim: 2048,
                threads: 1,
                ns_per_op: 17_920_000,
            },
            KernelRecord {
                kernel: "pairwise_condensed_packed".into(),
                n: 2000,
                dim: 2048,
                threads: 4,
                ns_per_op: 10_560_000,
            },
        ]
    }

    #[test]
    fn json_round_trip() {
        let records = sample();
        let parsed = parse_records(&to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn parses_reordered_fields_and_whitespace() {
        let text = r#"[
          { "ns_per_op": 5, "kernel": "k", "dim": 64, "threads": 2, "n": 10 },
          {"kernel":"q","n":1,"dim":64,"threads":1,"ns_per_op":9}
        ]"#;
        let parsed = parse_records(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].kernel, "k");
        assert_eq!(parsed[0].ns_per_op, 5);
        assert_eq!(parsed[1].kernel, "q");
    }

    #[test]
    fn rejects_missing_fields() {
        let text = r#"[{"kernel": "k", "n": 1}]"#;
        assert!(parse_records(text).is_err());
    }

    #[test]
    fn rejects_non_array() {
        assert!(parse_records("{}").is_err());
    }

    #[test]
    fn empty_array_is_empty() {
        assert_eq!(parse_records("[]").unwrap(), Vec::new());
        assert_eq!(parse_records("[\n]").unwrap(), Vec::new());
    }

    #[test]
    fn measure_interleaved_returns_one_median_per_kernel() {
        let mut counters = [0usize; 2];
        let (a, b) = {
            let [ref mut a, ref mut b] = counters;
            (a, b)
        };
        let mut kernels: Vec<Kernel<'_>> = vec![
            ("one", 1, Box::new(|| *a += 1)),
            ("two", 1, Box::new(|| *b += 1)),
        ];
        let medians = measure_interleaved(3, &mut kernels);
        assert_eq!(medians.len(), 2);
        drop(kernels);
        // warmup + samples
        assert_eq!(counters, [4, 4]);
    }
}
