//! Regenerates Fig. 9: energy efficiency vs HyperSpec flavours.
use spechd_bench::{fig9_rows, print_table};

fn main() {
    print_table(
        "Fig. 9: energy on PXD000561 (paper: e2e 14x/31x, clustering 12x/40x)",
        &[
            "tool",
            "e2e (J)",
            "e2e ratio",
            "clustering (J)",
            "clustering ratio",
        ],
        &fig9_rows(),
    );
}
