//! Regenerates Fig. 6a: linkage comparison at ~1% incorrect clustering.
use spechd_bench::{fig6a_rows, hard_dataset, print_table};

fn main() {
    let (_, dataset) = hard_dataset(2_000, 6);
    print_table(
        "Fig. 6a: linkage efficacy at ICR <= 1.5% (paper: complete 44%/0.764, ward 40%/0.756)",
        &[
            "linkage",
            "threshold",
            "clustered(%)",
            "ICR(%)",
            "completeness",
        ],
        &fig6a_rows(&dataset, 0.015),
    );
}
