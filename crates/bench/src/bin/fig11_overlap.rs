//! Regenerates Fig. 11: peptide-identification overlap of consensus
//! spectra (SpecHD vs GLEAMS vs HyperSpec), split by precursor charge.
use spechd_bench::{fig11_overlap, hard_dataset, print_table};

fn main() {
    let (generator, dataset) = hard_dataset(2_500, 11);
    let outcomes = fig11_overlap(&generator, &dataset);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                format!("{}+", o.charge),
                o.venn.total_a().to_string(),
                o.venn.total_b().to_string(),
                o.venn.total_c().to_string(),
                o.venn.abc.to_string(),
                format!("{:+.2}%", o.venn.a_vs_b_percent()),
                format!(
                    "{:+.2}%",
                    if o.venn.total_c() == 0 {
                        0.0
                    } else {
                        (o.venn.total_a() as f64 - o.venn.total_c() as f64)
                            / o.venn.total_c() as f64
                            * 100.0
                    }
                ),
            ]
        })
        .collect();
    print_table(
        "Fig. 11: unique peptides at 1% FDR (paper: SpecHD -1.38/-3.24% vs GLEAMS, +7.33/+5.10% vs HyperSpec)",
        &["charge", "SpecHD", "GLEAMS", "HyperSpec", "all three", "vs GLEAMS", "vs HyperSpec"],
        &rows,
    );
}
