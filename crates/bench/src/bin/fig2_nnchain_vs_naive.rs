//! Regenerates Fig. 2: naive HAC vs NN-chain HAC work and runtime.
use spechd_bench::{fig2_rows, print_table};

fn main() {
    print_table(
        "Fig. 2: naive vs NN-chain HAC (complete linkage, random distances)",
        &[
            "n",
            "naive cmp (M)",
            "chain cmp (M)",
            "naive (s)",
            "chain (s)",
            "speedup",
        ],
        &fig2_rows(&[100, 200, 400, 800, 1600]),
    );
}
