//! Regenerates Fig. 6b: hypervector compression factors (24x-108x).
use spechd_bench::{fig6b_rows, print_table};

fn main() {
    print_table(
        "Fig. 6b: compression factor at D=2048",
        &["dataset", "raw size", "HV archive", "factor"],
        &fig6b_rows(),
    );
}
