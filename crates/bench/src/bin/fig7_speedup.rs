//! Regenerates Fig. 7: end-to-end runtime speedup over the baselines.
use spechd_bench::{fig7_rows, print_table};

fn main() {
    print_table(
        "Fig. 7: end-to-end speedup over SpecHD=1 (paper: GLEAMS 31-54x, HyperSpec-HAC 6x)",
        &[
            "dataset",
            "SpecHD (s)",
            "GLEAMS",
            "HyperSpec-HAC",
            "msCRUSH",
            "Falcon",
        ],
        &fig7_rows(),
    );
}
