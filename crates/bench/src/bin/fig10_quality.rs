//! Regenerates Fig. 10: clustered spectra ratio vs incorrect clustering
//! ratio for SpecHD and the comparator tools.
use spechd_bench::{fig10_rows, hard_dataset, print_table};

fn main() {
    let (_, dataset) = hard_dataset(2_000, 10);
    print_table(
        "Fig. 10: clustered ratio vs ICR (paper: SpecHD ~45% at 1% ICR)",
        &["tool", "knob", "clustered(%)", "ICR(%)", "completeness"],
        &fig10_rows(&dataset),
    );
}
