//! Emits machine-readable packed-library search benchmarks as
//! `BENCH_pr7.json`: standard (narrow-window) and open-modification
//! (wide-window) search throughput against synthetic [`HvLibrary`]s of
//! growing size, up to 10^6 entries.
//!
//! Usage:
//!
//! ```text
//! bench_pr7 [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the library sizes for the CI regression gate;
//! `--out` defaults to `BENCH_pr7.json`. Output is a JSON array of
//! `{kernel, n, dim, threads, ns_per_op}` records (one invocation =
//! one full query batch; queries/s follows from the batch size), plus
//! the size-independent `search_ref_8k` kernel that `bench_gate` uses
//! as the machine-normalizing reference.
//!
//! Before any timing, the packed engine is checked **bit-identical**
//! to the scalar reference scorer in both modes, and the served path
//! (library loaded into `spechd-server` over TCP, queries scored
//! remotely) is checked bit-identical to the local library path — a
//! faster-but-different engine must fail the bench. A hyperscore vs
//! packed-standard vs packed-OMS identification agreement summary
//! ([`venn3`]) and a target–decoy FDR cut over the HD scores are
//! printed alongside.

use spechd_bench::kernel_bench::{measure_interleaved, write_records, Kernel, KernelRecord};
use spechd_hdc::{BinaryHypervector, EncoderConfig, IdLevelEncoder};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_rng::{Rng, Xoshiro256StarStar};
use spechd_search::overlap::venn3;
use spechd_search::{
    encode_spectrum_peaks, filter_at_fdr, scalar_search_window, HdPsm, HvLibrary, HvLibraryBuilder,
    PackedSearchConfig, PackedSearchEngine, PeptideDatabase, SearchConfig, SearchEngine,
};
use spechd_server::{LibraryEntryWire, QueryWire, SearchClient, Server, ServerConfig};
use std::collections::BTreeSet;
use std::hint::black_box;

const DIM: usize = 2048;
const NUM_QUERIES: usize = 64;
/// Bits flipped to derive a query from a library row — close enough to
/// rank its source first, far enough to exercise real distances.
const QUERY_NOISE_BITS: usize = 150;
const REF_SIZE: usize = 8192;
/// Repeats of the query batch inside one standard-search invocation —
/// narrow windows make a single batch microsecond-scale, too small to
/// time against scheduler jitter.
const STD_REPS: usize = 16;

/// A library of `n` random entries with evenly spaced masses over
/// `[500, 3500]` Da (pushed pre-sorted, so the builder's identity fast
/// path applies even at 10^6 entries). Odd rows are decoys.
fn build_random_library(n: usize, seed: u64) -> HvLibrary {
    let stride = DIM.div_ceil(64);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut b = HvLibraryBuilder::new(DIM);
    let mut words = vec![0u64; stride];
    for i in 0..n {
        for w in &mut words {
            *w = rng.next_u64();
        }
        let mass = 500.0 + 3000.0 * i as f64 / n.max(1) as f64;
        b.push_row_words(&words, mass, 2, format!("e{i}"), i % 2 == 1);
    }
    b.build()
}

/// Queries derived from library rows: copy a random row, flip a few
/// bits, jitter the mass within the standard window.
fn make_queries(lib: &HvLibrary, seed: u64) -> Vec<(BinaryHypervector, f64)> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..NUM_QUERIES)
        .map(|_| {
            let i = rng.bounded_u64(lib.len() as u64) as usize;
            let mut hv = BinaryHypervector::from_words(DIM, lib.pack().row(i).to_vec());
            hv.flip_random_bits(QUERY_NOISE_BITS, &mut rng);
            (hv, lib.mass(i) + rng.range_f64(-0.02, 0.02))
        })
        .collect()
}

fn wire_entries(lib: &HvLibrary) -> Vec<LibraryEntryWire> {
    (0..lib.len())
        .map(|i| LibraryEntryWire {
            mass: lib.mass(i),
            charge: lib.charge(i),
            is_decoy: lib.is_decoy(i),
            id: lib.id(i).to_string(),
            words: lib.pack().row(i).to_vec(),
        })
        .collect()
}

/// Packed == scalar in both modes, then served == library path — the
/// acceptance gates that must pass before any timing.
fn equivalence_gates(engine: &PackedSearchEngine) {
    let lib = build_random_library(512, 0x9A7E);
    let qs = make_queries(&lib, 0x0B5E);
    for (qi, (hv, mass)) in qs.iter().enumerate() {
        assert_eq!(
            engine.search_standard(&lib, hv, *mass, qi),
            scalar_search_window(&lib, hv, *mass, qi, engine.config().precursor_tol_da, 5),
            "standard search diverged from scalar reference at query {qi}"
        );
        assert_eq!(
            engine.search_open(&lib, hv, *mass, qi),
            scalar_search_window(&lib, hv, *mass, qi, engine.config().open_window_da, 5),
            "OMS search diverged from scalar reference at query {qi}"
        );
    }

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let running = server.spawn().expect("spawn");
    let mut client =
        SearchClient::connect(running.addr(), 7, DIM as u32).expect("connect search client");
    client.load(&wire_entries(&lib)).expect("load library");
    let wire_queries: Vec<QueryWire> = qs
        .iter()
        .map(|(hv, mass)| QueryWire {
            mass: *mass,
            words: hv.words().to_vec(),
        })
        .collect();
    for &(window_da, top_k) in &[(0.05f64, 5u32), (250.0, 5)] {
        let (served, _) = client
            .search(&wire_queries, window_da, top_k)
            .expect("served search");
        for (qi, ((hv, mass), result)) in qs.iter().zip(&served).enumerate() {
            let local = engine.search_window(&lib, hv, *mass, qi, window_da);
            let local_wire: Vec<(u64, u16, f64, bool)> = local
                .iter()
                .map(|p| (p.library_index as u64, p.distance, p.mass_delta, p.is_decoy))
                .collect();
            let served_wire: Vec<(u64, u16, f64, bool)> = result
                .hits
                .iter()
                .map(|h| (h.library_index, h.distance, h.mass_delta, h.is_decoy))
                .collect();
            assert_eq!(
                served_wire, local_wire,
                "served search diverged from library path: window {window_da} query {qi}"
            );
        }
    }
    running.shutdown();
    println!("[bench_pr7] packed==scalar and served==library equivalence gates passed");
}

/// Hyperscore vs packed-standard vs packed-OMS identification
/// agreement on one synthetic peptide workload, plus an FDR cut over
/// the HD scores.
fn agreement_summary() {
    let gen = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: 400,
        num_peptides: 80,
        noise_spectrum_fraction: 0.0,
        seed: 0x7EA5,
        ..SyntheticConfig::default()
    });
    let dataset = gen.generate();
    let db = PeptideDatabase::build(gen.peptide_library());
    let hyper_engine = SearchEngine::new(db.clone(), SearchConfig::default());
    let hyper_ids: BTreeSet<String> = hyper_engine
        .search_dataset(dataset.spectra())
        .iter()
        .flatten()
        .filter(|p| !p.is_decoy)
        .map(|p| p.peptide.sequence().to_string())
        .collect();

    let encoder = IdLevelEncoder::new(EncoderConfig::default());
    let lib = HvLibrary::from_database(&db, &encoder, 1);
    let packed = PackedSearchEngine::new(PackedSearchConfig {
        top_k: 1,
        ..PackedSearchConfig::default()
    });
    let mut std_ids = BTreeSet::new();
    let mut oms_ids = BTreeSet::new();
    let mut oms_psms: Vec<HdPsm> = Vec::new();
    for (i, s) in dataset.spectra().iter().enumerate() {
        let hv = encode_spectrum_peaks(&encoder, s.peaks());
        let mass = s.precursor().neutral_mass();
        if let Some(h) = engine_top_target(&packed.search_standard(&lib, &hv, mass, i)) {
            std_ids.insert(lib.id(h.library_index).to_string());
        }
        let open = packed.search_open(&lib, &hv, mass, i);
        if let Some(h) = engine_top_target(&open) {
            oms_ids.insert(lib.id(h.library_index).to_string());
        }
        oms_psms.extend(open.first().copied());
    }

    let venn = venn3(
        hyper_ids.iter().map(String::as_str),
        std_ids.iter().map(String::as_str),
        oms_ids.iter().map(String::as_str),
    );
    println!(
        "[bench_pr7] id agreement (hyperscore/standard/OMS): totals {}/{}/{} \
         abc={} ab={} ac={} bc={} union={} hd_vs_hyperscore={:+.2}%",
        venn.total_a(),
        venn.total_b(),
        venn.total_c(),
        venn.abc,
        venn.ab,
        venn.ac,
        venn.bc,
        venn.union(),
        -venn.a_vs_b_percent(),
    );
    assert!(venn.total_a() > 0, "hyperscore identified nothing");
    assert!(venn.abc > 0, "the three search modes agree on nothing");

    let accepted_1 = filter_at_fdr(&oms_psms, 0.01).len();
    let accepted_5 = filter_at_fdr(&oms_psms, 0.05).len();
    println!(
        "[bench_pr7] OMS top-1 HD PSMs: {} total, {} at 1% FDR, {} at 5% FDR",
        oms_psms.len(),
        accepted_1,
        accepted_5,
    );
    assert!(accepted_1 > 0, "FDR cut rejected every HD PSM");
}

fn engine_top_target(hits: &[HdPsm]) -> Option<&HdPsm> {
    hits.iter().find(|h| !h.is_decoy)
}

fn main() {
    let mut smoke = false;
    let mut samples = 5usize;
    let mut out_path = String::from("BENCH_pr7.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                smoke = true;
                samples = 3;
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_pr7 [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    // Kernel names are size-suffixed because the gate treats names as
    // unique within a file; smoke and full runs use disjoint sizes, so
    // the shared `search_ref_8k` reference normalizes between them.
    let sizes: &[(usize, &'static str, &'static str)] = if smoke {
        &[
            (1_000, "standard_search_1k", "oms_search_1k"),
            (4_000, "standard_search_4k", "oms_search_4k"),
            (16_000, "standard_search_16k", "oms_search_16k"),
        ]
    } else {
        &[
            (10_000, "standard_search_10k", "oms_search_10k"),
            (100_000, "standard_search_100k", "oms_search_100k"),
            (1_000_000, "standard_search_1m", "oms_search_1m"),
        ]
    };

    let engine = PackedSearchEngine::new(PackedSearchConfig::default());
    println!(
        "[bench_pr7] dim={DIM} queries/batch={NUM_QUERIES} samples={samples} \
         tol={}Da open_window={}Da top_k={}",
        engine.config().precursor_tol_da,
        engine.config().open_window_da,
        engine.config().top_k,
    );

    equivalence_gates(&engine);
    agreement_summary();

    let mut records: Vec<KernelRecord> = Vec::new();

    // Size-independent reference kernel: a full query batch swept over
    // the whole of a fixed 8192-entry library — present in every run of
    // this bench so `bench_gate` can normalize machines against it. The
    // whole-library sweep keeps one invocation in the milliseconds,
    // well above thread-dispatch jitter.
    {
        let ref_lib = build_random_library(REF_SIZE, 0x8EF);
        let ref_qs = make_queries(&ref_lib, 0x8EF1);
        let mut kernels: Vec<Kernel<'_>> = vec![(
            "search_ref_8k",
            engine.config().threads.max(1),
            Box::new(|| {
                for (qi, (hv, mass)) in ref_qs.iter().enumerate() {
                    black_box(engine.search_window(
                        black_box(&ref_lib),
                        black_box(hv),
                        *mass,
                        qi,
                        5000.0,
                    ));
                }
            }),
        )];
        let medians = measure_interleaved(samples, &mut kernels);
        println!("  {:<24} {:>12} ns/op", "search_ref_8k", medians[0]);
        records.push(KernelRecord {
            kernel: "search_ref_8k".to_string(),
            n: REF_SIZE,
            dim: DIM,
            threads: kernels[0].1,
            ns_per_op: medians[0],
        });
    }

    for &(n, std_name, oms_name) in sizes {
        let lib = build_random_library(n, 0x11B ^ n as u64);
        let qs = make_queries(&lib, 0x0E51 ^ n as u64);
        // Narrow-window sweeps are microseconds per batch; repeating the
        // batch inside one invocation keeps the timed unit above
        // scheduler jitter. The per-query rate divides reps back out.
        let mut kernels: Vec<Kernel<'_>> = vec![
            (
                std_name,
                engine.config().threads.max(1),
                Box::new(|| {
                    for _ in 0..STD_REPS {
                        for (qi, (hv, mass)) in qs.iter().enumerate() {
                            black_box(engine.search_standard(black_box(&lib), hv, *mass, qi));
                        }
                    }
                }),
            ),
            (
                oms_name,
                engine.config().threads.max(1),
                Box::new(|| {
                    for (qi, (hv, mass)) in qs.iter().enumerate() {
                        black_box(engine.search_open(black_box(&lib), hv, *mass, qi));
                    }
                }),
            ),
        ];
        let medians = measure_interleaved(samples, &mut kernels);
        for (((kernel, threads, _), ns), reps) in kernels.iter().zip(&medians).zip([STD_REPS, 1]) {
            let qps = (NUM_QUERIES * reps) as f64 / (*ns as f64 * 1e-9);
            println!("  {kernel:<24} n={n:<8} {ns:>12} ns/inv  {qps:>10.0} queries/s");
            records.push(KernelRecord {
                kernel: kernel.to_string(),
                n,
                dim: DIM,
                threads: *threads,
                ns_per_op: *ns,
            });
        }
    }

    write_records(&out_path, &records);
    println!("[bench_pr7] wrote {out_path}");
}
