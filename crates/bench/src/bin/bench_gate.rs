//! Tolerance-aware bench-regression gate: compares a current
//! `BENCH_pr*.json` against a committed baseline and exits non-zero when
//! any kernel regressed beyond the tolerance.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline PATH --current PATH
//!            [--tolerance 0.30] [--reference KERNEL] [--min-match N]
//! ```
//!
//! Records are matched on `(kernel, n, dim)` — never on `threads`, which
//! varies with the machine. Two comparison modes:
//!
//! * **Relative (default when `--reference` is given)** — each kernel's
//!   `ns_per_op` is first normalized by the reference kernel measured *in
//!   the same file*, and the gate compares normalized values. Absolute
//!   machine speed cancels out, so a baseline recorded on one box gates
//!   runs on CI's heterogeneous fleet: a regression means the kernel got
//!   slower *relative to the reference workload on the same hardware*,
//!   which is what a code regression looks like. The reference kernel
//!   itself is excluded from gating and from `--min-match` (its ratio is
//!   identically 1.0); a regression confined to the reference cannot be
//!   seen in this mode, so pick a stable baseline kernel that PRs are not
//!   expected to touch.
//! * **Absolute (no `--reference`)** — raw `ns_per_op` ratios; only
//!   meaningful when baseline and current come from the same machine.
//!
//! `--min-match` (default 1) guards against a vacuous pass when file
//! schemas drift and nothing matches. Exit codes: 0 pass, 1 regression,
//! 2 usage/IO error.

use spechd_bench::kernel_bench::{read_records, KernelRecord};

struct GateConfig {
    baseline: String,
    current: String,
    tolerance: f64,
    reference: Option<String>,
    min_match: usize,
}

fn parse_args() -> Result<GateConfig, String> {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = 0.30f64;
    let mut reference = None;
    let mut min_match = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--reference" => reference = Some(value("--reference")?),
            "--min-match" => {
                min_match = value("--min-match")?
                    .parse()
                    .map_err(|e| format!("--min-match: {e}"))?;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(GateConfig {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        tolerance,
        reference,
        min_match,
    })
}

/// The reference record for normalization: matched by kernel name (any n,
/// so full-size baselines can normalize smoke runs if ever needed — within
/// one file there is a single n in practice).
fn find_reference<'a>(records: &'a [KernelRecord], name: &str) -> Option<&'a KernelRecord> {
    records.iter().find(|r| r.kernel == name)
}

fn main() {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            eprintln!(
                "usage: bench_gate --baseline PATH --current PATH \
                 [--tolerance 0.30] [--reference KERNEL] [--min-match N]"
            );
            std::process::exit(2);
        }
    };
    let load = |path: &str| -> Vec<KernelRecord> {
        match read_records(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                std::process::exit(2);
            }
        }
    };
    let baseline = load(&config.baseline);
    let current = load(&config.current);

    // Normalizers: ns of the reference kernel in each file, or 1 (absolute
    // mode) when no reference is configured.
    let (base_norm, cur_norm) = match &config.reference {
        Some(name) => {
            let base = find_reference(&baseline, name);
            let cur = find_reference(&current, name);
            match (base, cur) {
                (Some(b), Some(c)) => (b.ns_per_op.max(1) as f64, c.ns_per_op.max(1) as f64),
                _ => {
                    eprintln!(
                        "bench_gate: reference kernel '{name}' missing from {}",
                        if base.is_none() {
                            &config.baseline
                        } else {
                            &config.current
                        }
                    );
                    std::process::exit(2);
                }
            }
        }
        None => (1.0, 1.0),
    };
    let mode = if config.reference.is_some() {
        "relative"
    } else {
        "absolute"
    };
    println!(
        "[bench_gate] {} vs {} ({mode}, tolerance {:.0}%)",
        config.current,
        config.baseline,
        config.tolerance * 100.0
    );

    let mut matched = 0usize;
    let mut regressions = 0usize;
    for cur in &current {
        // In relative mode the reference kernel would compare against
        // itself at an exact 1.0, so it can neither regress nor count as
        // a meaningful comparison toward --min-match.
        if config.reference.as_deref() == Some(cur.kernel.as_str()) {
            println!(
                "  {:<32} (reference kernel; normalizes the others, not gated itself)",
                cur.kernel
            );
            continue;
        }
        let Some(base) = baseline
            .iter()
            .find(|b| b.kernel == cur.kernel && b.n == cur.n && b.dim == cur.dim)
        else {
            println!("  {:<32} (no baseline record; skipped)", cur.kernel);
            continue;
        };
        matched += 1;
        // In relative mode both sides are dimensionless multiples of the
        // reference kernel's time in their own file.
        let base_value = base.ns_per_op.max(1) as f64 / base_norm;
        let cur_value = cur.ns_per_op.max(1) as f64 / cur_norm;
        let ratio = cur_value / base_value;
        let regressed = ratio > 1.0 + config.tolerance;
        if regressed {
            regressions += 1;
        }
        println!(
            "  {:<32} baseline {:>12} ns  current {:>12} ns  ratio {:>5.2} {}",
            cur.kernel,
            base.ns_per_op,
            cur.ns_per_op,
            ratio,
            if regressed { "REGRESSED" } else { "ok" }
        );
    }

    if matched < config.min_match {
        eprintln!(
            "bench_gate: only {matched} kernel(s) matched the baseline \
             (need {}); the comparison is vacuous",
            config.min_match
        );
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!(
            "bench_gate: {regressions} kernel(s) regressed more than {:.0}%",
            config.tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("[bench_gate] pass: {matched} kernel(s) within tolerance");
}
