//! Emits machine-readable incremental-service benchmarks as
//! `BENCH_pr10.json`: the update-latency-vs-archive-size curve — one
//! fixed-size installment folded into persistent stores grown to a
//! ladder of archive sizes — plus the medoid refresh / compaction pass
//! at the largest archive and the served update round trip (connect,
//! `OpenStore`, `SubmitIncremental`, ack) over loopback against its
//! library twin.
//!
//! Usage:
//!
//! ```text
//! bench_pr10 [--smoke] [--out PATH]
//! ```
//!
//! The full run grows the archive past 10^5 spectra; `--smoke` shrinks
//! the ladder for the CI regression gate (`--out` defaults to
//! `BENCH_pr10.json`). Output is a JSON array of
//! `{kernel, n, dim, threads, ns_per_op}` records where `n` is the
//! pre-update **archive size** for the curve kernels; `bench_gate`
//! compares two such files with `batch_pipeline` as the
//! machine-normalizing reference.
//!
//! Before any timing, the served path is checked against the library:
//! every `SubmitIncremental` ack streamed back by a real `spechd-server`
//! must be **bit-identical** (base id, kept set, labels) to the same
//! installment folded locally with [`SpecHd::run_incremental`], and the
//! grown store must round-trip bit-identically through SHPK bytes — a
//! faster-but-different service path must fail the bench.

use spechd_bench::kernel_bench::{measure_interleaved, write_records, Kernel, KernelRecord};
use spechd_core::{ClusterStore, SpecHd};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::{Spectrum, SpectrumDataset};
use spechd_server::{JobConfig, Server, ServerConfig, StoreClient};
use std::hint::black_box;
use std::time::Duration;

const DIM: usize = 2048;

fn main() {
    // Archive-size ladder, one curve point per rung; the last rung of
    // the full run crosses 10^5 spectra in the store.
    let mut ladder: Vec<usize> = vec![10_000, 25_000, 50_000, 100_000];
    let mut update = 1_000usize;
    let mut samples = 5usize;
    let mut out_path = String::from("BENCH_pr10.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                ladder = vec![150, 300, 600, 1200];
                update = 100;
                samples = 3;
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_pr10 [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let archive_max = *ladder.last().expect("non-empty ladder");
    let total = archive_max + update;
    let union = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: total,
        num_peptides: (total / 5).max(10),
        seed: 0x5BEC10,
        ..SyntheticConfig::default()
    })
    .generate();
    let spectra: Vec<Spectrum> = union.spectra().to_vec();
    let (archive_spectra, update_spectra) = spectra.split_at(archive_max);
    let update_part = SpectrumDataset::from_spectra(update_spectra.to_vec());

    let job_config = JobConfig::default();
    let engine = SpecHd::new(job_config.pipeline_config());
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "[bench_pr10] ladder={ladder:?} update={update} dim={DIM} samples={samples} workers={workers}"
    );

    // ── Served/library bit-identity gate before timing anything. ──
    // A real server over loopback, memory-only stores; the smallest rung
    // replayed in thirds through a StoreClient session must ack exactly
    // what the library computes.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            rejoin_grace: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server")
    .spawn()
    .expect("spawn server");
    {
        let gate_n = ladder[0].min(600);
        let chunk = gate_n.div_ceil(3);
        let mut client = StoreClient::connect(server.addr(), "gate", job_config.clone())
            .expect("open gate store");
        let mut lib_store = engine.new_store_keeping_rows().expect("fresh store");
        for (i, part) in spectra[..gate_n].chunks(chunk).enumerate() {
            let ack = client
                .submit_incremental(part.to_vec())
                .expect("served installment");
            let out = engine
                .run_incremental(
                    &mut lib_store,
                    &SpectrumDataset::from_spectra(part.to_vec()),
                )
                .expect("library installment");
            assert_eq!(ack.base_id, out.base_id(), "installment {i}: base id");
            assert_eq!(
                ack.kept,
                out.kept().iter().map(|&k| k as u32).collect::<Vec<_>>(),
                "installment {i}: kept set diverged between served and library"
            );
            assert_eq!(
                ack.labels,
                out.installment_labels()
                    .iter()
                    .map(|&l| l as u64)
                    .collect::<Vec<_>>(),
                "installment {i}: labels diverged between served and library"
            );
        }
        let bytes = lib_store.to_bytes();
        let reloaded = ClusterStore::from_bytes(&bytes).expect("round-trip reload");
        assert_eq!(
            reloaded.to_bytes(),
            bytes,
            "store re-serialization is not bit-identical"
        );
        println!(
            "[bench_pr10] equivalence gates passed: {gate_n}-spectrum served session \
             bit-identical to library, store round trip bit-identical"
        );
    }

    // ── Grow the archive once, snapshotting a store clone per rung. ──
    // Member rows are kept, mirroring what server-side stores do.
    let mut snapshots: Vec<ClusterStore> = Vec::with_capacity(ladder.len());
    {
        let mut store = engine.new_store_keeping_rows().expect("fresh store");
        let mut grown = 0usize;
        for &size in &ladder {
            let step = (size - grown).div_ceil(8).max(1);
            for part in archive_spectra[grown..size].chunks(step) {
                engine
                    .run_incremental(&mut store, &SpectrumDataset::from_spectra(part.to_vec()))
                    .expect("archive installment");
            }
            grown = size;
            println!(
                "[bench_pr10] archive rung: {} spectra in {} clusters",
                store.next_spectrum_id(),
                store.num_clusters(),
            );
            snapshots.push(store.clone());
        }
    }

    // Curve kernel names are static; `n` records each rung's archive
    // size, which is what `bench_gate` matches on.
    const RUNG_NAMES: [&str; 4] = [
        "incremental_update_rung1",
        "incremental_update_rung2",
        "incremental_update_rung3",
        "incremental_update_rung4",
    ];
    assert_eq!(ladder.len(), RUNG_NAMES.len(), "one kernel name per rung");

    let batch_part = SpectrumDataset::from_spectra(spectra[..ladder[0]].to_vec());
    let mut served_serial = 0u64;
    let server_addr = server.addr();
    let largest = snapshots.last().expect("non-empty ladder").clone();

    let mut kernels: Vec<Kernel<'_>> = vec![(
        "batch_pipeline",
        workers,
        Box::new(|| {
            black_box(engine.run(black_box(&batch_part)));
        }),
    )];
    for (rung, snapshot) in snapshots.iter().enumerate() {
        let engine = &engine;
        let update_part = &update_part;
        kernels.push((
            RUNG_NAMES[rung],
            workers,
            Box::new(move || {
                let mut store = snapshot.clone();
                black_box(
                    engine
                        .run_incremental(&mut store, black_box(update_part))
                        .expect("update installment"),
                );
            }),
        ));
    }
    kernels.push((
        "refresh_largest",
        workers,
        Box::new(|| {
            let mut store = largest.clone();
            black_box(engine.refresh_store(&mut store).expect("refresh pass"));
        }),
    ));
    // The library twin of the served round trip below: fold the update
    // installment into a fresh store. The served kernel's extra cost
    // over this one is the wire + session overhead.
    kernels.push((
        "incremental_update_cold",
        workers,
        Box::new(|| {
            let mut store = engine.new_store_keeping_rows().expect("fresh store");
            black_box(
                engine
                    .run_incremental(&mut store, black_box(&update_part))
                    .expect("cold update"),
            );
        }),
    ));
    kernels.push((
        "served_update_cold",
        workers,
        Box::new(|| {
            // A fresh store name per invocation keeps the measured
            // archive size constant (server-side stores are mutable).
            served_serial += 1;
            let name = format!("bench{served_serial}");
            let mut client = StoreClient::connect(server_addr, &name, job_config.clone())
                .expect("open bench store");
            black_box(
                client
                    .submit_incremental(update_spectra.to_vec())
                    .expect("served update"),
            );
        }),
    ));

    let medians = measure_interleaved(samples, &mut kernels);
    let mut records: Vec<KernelRecord> = Vec::new();
    for ((kernel, threads, _), ns) in kernels.iter().zip(&medians) {
        let n = match RUNG_NAMES.iter().position(|r| r == kernel) {
            Some(rung) => ladder[rung],
            None if *kernel == "batch_pipeline" => ladder[0],
            None if *kernel == "refresh_largest" => archive_max,
            None => update,
        };
        println!("  {kernel:<26} n={n:<7} threads={threads:<2} {ns:>12} ns/op");
        records.push(KernelRecord {
            kernel: kernel.to_string(),
            n,
            dim: DIM,
            threads: *threads,
            ns_per_op: *ns,
        });
    }
    drop(kernels);
    server.shutdown();

    // The curve in one line: update latency per rung, normalized to the
    // first rung — how the cost of "+1 installment" scales with archive.
    let rung_ns: Vec<u128> = records
        .iter()
        .filter(|r| r.kernel.starts_with("incremental_update_rung"))
        .map(|r| r.ns_per_op)
        .collect();
    let base = rung_ns[0].max(1) as f64;
    let curve: Vec<String> = ladder
        .iter()
        .zip(&rung_ns)
        .map(|(size, ns)| format!("{size}:{:.2}x", *ns as f64 / base))
        .collect();
    println!(
        "[bench_pr10] update-latency curve (vs rung1): {}",
        curve.join(" ")
    );

    write_records(&out_path, &records);
    println!("[bench_pr10] wrote {out_path}");
}
