//! Design-space exploration sweep (the paper's DSE claim, SS I).
use spechd_bench::{dse_rows, print_table};

fn main() {
    print_table(
        "DSE Pareto front on PXD000561 (time vs energy)",
        &[
            "encoders",
            "cluster kernels",
            "MSAS channels",
            "p2p",
            "total (s)",
            "energy (J)",
        ],
        &dse_rows(),
    );
}
