//! Regenerates Table I: preprocessing performance metrics.
use spechd_bench::{print_table, table1_rows};

fn main() {
    print_table(
        "Table I: preprocessing performance (paper vs MSAS model)",
        &[
            "dataset",
            "sample",
            "#spectra",
            "size",
            "paper t(s)",
            "model t(s)",
            "paper E(J)",
            "model E(J)",
        ],
        &table1_rows(),
    );
}
