//! Emits machine-readable distance-kernel benchmarks as `BENCH_pr4.json`:
//! the scalar per-pair baseline ("before") against the tiled packed engine
//! ("after"), at the acceptance point n = 2000, D = 2048.
//!
//! Usage:
//!
//! ```text
//! bench_pr4 [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks n for the CI bit-rot check; `--out` defaults to
//! `BENCH_pr4.json` in the current directory. The output is a JSON array
//! of `{kernel, n, dim, threads, ns_per_op}` records, where `ns_per_op`
//! is the median wall-clock time of one full kernel invocation.

use spechd_hdc::distance::{self, PackedDistanceEngine};
use spechd_hdc::{BinaryHypervector, HvPack};
use spechd_rng::Xoshiro256StarStar;
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

const DIM: usize = 2048;

struct Record {
    kernel: &'static str,
    n: usize,
    threads: usize,
    ns_per_op: u128,
}

/// Measures all kernels with their samples interleaved round-robin, so
/// clock-speed drift on shared machines biases every kernel equally
/// instead of penalizing whichever ran last. Returns median ns per kernel.
/// A named, thread-annotated benchmark body.
type Kernel<'a> = (&'static str, usize, Box<dyn FnMut() + 'a>);

fn measure_interleaved(samples: usize, kernels: &mut [Kernel<'_>]) -> Vec<u128> {
    let mut elapsed: Vec<Vec<u128>> = vec![Vec::with_capacity(samples); kernels.len()];
    // One warmup round, then `samples` timed rounds.
    for (_, _, f) in kernels.iter_mut() {
        f();
    }
    for _ in 0..samples {
        for (k, (_, _, f)) in kernels.iter_mut().enumerate() {
            let start = Instant::now();
            f();
            elapsed[k].push(start.elapsed().as_nanos());
        }
    }
    elapsed
        .into_iter()
        .map(|mut v| {
            v.sort_unstable();
            v[v.len() / 2]
        })
        .collect()
}

fn main() {
    let mut n = 2000usize;
    let mut samples = 7usize;
    let mut out_path = String::from("BENCH_pr4.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                n = 192;
                samples = 3;
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_pr4 [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5BEC);
    let hvs: Vec<BinaryHypervector> = (0..n)
        .map(|_| BinaryHypervector::random(DIM, &mut rng))
        .collect();
    let pack = HvPack::from_hypervectors(DIM, &hvs);
    let auto_threads = PackedDistanceEngine::new().resolved_threads();
    let query = hvs[0].clone();
    let eps = (DIM as u32) * 48 / 100;

    println!("[bench_pr4] n={n} dim={DIM} samples={samples}");
    let tiled_1t = PackedDistanceEngine::new().threads(1);
    let tiled_auto = PackedDistanceEngine::new();

    // Bit-exactness gate before timing anything: a fast-but-wrong kernel
    // must fail the bench run, so the CI smoke catches kernel bit-rot.
    assert_eq!(
        tiled_auto.pairwise_condensed(&pack),
        distance::pairwise_condensed(&hvs),
        "packed kernel diverged from the scalar reference"
    );
    println!("[bench_pr4] packed/scalar bit-exactness check passed");
    let mut kernels: Vec<Kernel<'_>> = vec![
        (
            "pairwise_condensed_scalar",
            1,
            Box::new(|| {
                black_box(distance::pairwise_condensed(black_box(&hvs)));
            }),
        ),
        (
            "pairwise_condensed_packed",
            1,
            Box::new(|| {
                black_box(tiled_1t.pairwise_condensed(black_box(&pack)));
            }),
        ),
        (
            "pairwise_condensed_packed_auto",
            auto_threads,
            Box::new(|| {
                black_box(tiled_auto.pairwise_condensed(black_box(&pack)));
            }),
        ),
        (
            "one_to_many_scalar",
            1,
            Box::new(|| {
                black_box(distance::one_to_many(black_box(&query), black_box(&hvs)));
            }),
        ),
        (
            "one_to_many_packed",
            auto_threads,
            Box::new(|| {
                black_box(tiled_auto.one_to_many(black_box(&query), black_box(&pack)));
            }),
        ),
        (
            "neighbors_within_packed",
            auto_threads,
            Box::new(|| {
                black_box(tiled_auto.neighbors_within(black_box(&pack), eps));
            }),
        ),
    ];
    let medians = measure_interleaved(samples, &mut kernels);
    let mut records: Vec<Record> = Vec::new();
    for ((kernel, threads, _), ns) in kernels.iter().zip(&medians) {
        println!("  {kernel:<32} threads={threads:<2} {ns:>12} ns/op");
        records.push(Record {
            kernel,
            n,
            threads: *threads,
            ns_per_op: *ns,
        });
    }

    let scalar_ns = records[0].ns_per_op;
    let packed_1t_ns = records[1].ns_per_op.max(1);
    let packed_auto_ns = records[2].ns_per_op.max(1);
    println!(
        "[bench_pr4] pairwise speedup: tiled 1t {:.2}x, tiled {}t {:.2}x",
        scalar_ns as f64 / packed_1t_ns as f64,
        auto_threads,
        scalar_ns as f64 / packed_auto_ns as f64,
    );

    let mut json = String::from("[\n");
    for (k, r) in records.iter().enumerate() {
        let comma = if k + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"n\": {}, \"dim\": {}, \"threads\": {}, \"ns_per_op\": {}}}{}\n",
            r.kernel, r.n, DIM, r.threads, r.ns_per_op, comma
        ));
    }
    json.push_str("]\n");
    let mut f = std::fs::File::create(&out_path).expect("create bench output file");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("[bench_pr4] wrote {out_path}");
}
