//! Emits machine-readable distance-kernel benchmarks as `BENCH_pr4.json`:
//! the scalar per-pair baseline ("before") against the tiled packed engine
//! ("after"), at the acceptance point n = 2000, D = 2048.
//!
//! Usage:
//!
//! ```text
//! bench_pr4 [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks n for the CI bit-rot check; `--out` defaults to
//! `BENCH_pr4.json` in the current directory. The output is a JSON array
//! of `{kernel, n, dim, threads, ns_per_op}` records (see
//! `spechd_bench::kernel_bench`), where `ns_per_op` is the median
//! wall-clock time of one full kernel invocation. `bench_gate` compares
//! two such files.

use spechd_bench::kernel_bench::{measure_interleaved, write_records, Kernel, KernelRecord};
use spechd_hdc::distance::{self, PackedDistanceEngine};
use spechd_hdc::{BinaryHypervector, HvPack};
use spechd_rng::Xoshiro256StarStar;
use std::hint::black_box;

const DIM: usize = 2048;

fn main() {
    let mut n = 2000usize;
    let mut samples = 7usize;
    let mut out_path = String::from("BENCH_pr4.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                n = 192;
                samples = 3;
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_pr4 [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5BEC);
    let hvs: Vec<BinaryHypervector> = (0..n)
        .map(|_| BinaryHypervector::random(DIM, &mut rng))
        .collect();
    let pack = HvPack::from_hypervectors(DIM, &hvs);
    let auto_threads = PackedDistanceEngine::new().resolved_threads();
    let query = hvs[0].clone();
    let eps = (DIM as u32) * 48 / 100;

    println!("[bench_pr4] n={n} dim={DIM} samples={samples}");
    let tiled_1t = PackedDistanceEngine::new().threads(1);
    let tiled_auto = PackedDistanceEngine::new();

    // Bit-exactness gate before timing anything: a fast-but-wrong kernel
    // must fail the bench run, so the CI smoke catches kernel bit-rot.
    assert_eq!(
        tiled_auto.pairwise_condensed(&pack),
        distance::pairwise_condensed(&hvs),
        "packed kernel diverged from the scalar reference"
    );
    println!("[bench_pr4] packed/scalar bit-exactness check passed");
    let mut kernels: Vec<Kernel<'_>> = vec![
        (
            "pairwise_condensed_scalar",
            1,
            Box::new(|| {
                black_box(distance::pairwise_condensed(black_box(&hvs)));
            }),
        ),
        (
            "pairwise_condensed_packed",
            1,
            Box::new(|| {
                black_box(tiled_1t.pairwise_condensed(black_box(&pack)));
            }),
        ),
        (
            "pairwise_condensed_packed_auto",
            auto_threads,
            Box::new(|| {
                black_box(tiled_auto.pairwise_condensed(black_box(&pack)));
            }),
        ),
        (
            "one_to_many_scalar",
            1,
            Box::new(|| {
                black_box(distance::one_to_many(black_box(&query), black_box(&hvs)));
            }),
        ),
        (
            "one_to_many_packed",
            auto_threads,
            Box::new(|| {
                black_box(tiled_auto.one_to_many(black_box(&query), black_box(&pack)));
            }),
        ),
        (
            "neighbors_within_packed",
            auto_threads,
            Box::new(|| {
                black_box(tiled_auto.neighbors_within(black_box(&pack), eps));
            }),
        ),
    ];
    let medians = measure_interleaved(samples, &mut kernels);
    let mut records: Vec<KernelRecord> = Vec::new();
    for ((kernel, threads, _), ns) in kernels.iter().zip(&medians) {
        println!("  {kernel:<32} threads={threads:<2} {ns:>12} ns/op");
        records.push(KernelRecord {
            kernel: kernel.to_string(),
            n,
            dim: DIM,
            threads: *threads,
            ns_per_op: *ns,
        });
    }

    let scalar_ns = records[0].ns_per_op;
    let packed_1t_ns = records[1].ns_per_op.max(1);
    let packed_auto_ns = records[2].ns_per_op.max(1);
    println!(
        "[bench_pr4] pairwise speedup: tiled 1t {:.2}x, tiled {}t {:.2}x",
        scalar_ns as f64 / packed_1t_ns as f64,
        auto_threads,
        scalar_ns as f64 / packed_auto_ns as f64,
    );

    write_records(&out_path, &records);
    println!("[bench_pr4] wrote {out_path}");
}
