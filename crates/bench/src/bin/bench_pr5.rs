//! Emits machine-readable streaming-pipeline benchmarks as
//! `BENCH_pr5.json`: the batch `SpecHd::run` baseline against the sharded
//! streaming mode at several watermarks, plus the mass-sorted early
//! retirement path, on one labelled synthetic workload.
//!
//! Usage:
//!
//! ```text
//! bench_pr5 [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks n for the CI regression gate; `--out` defaults to
//! `BENCH_pr5.json`. Output is a JSON array of
//! `{kernel, n, dim, threads, ns_per_op}` records (see
//! `spechd_bench::kernel_bench`); `bench_gate` compares two such files
//! with `batch_pipeline` as the machine-normalizing reference.
//!
//! Before any timing, every streaming configuration is checked
//! **bit-identical** to the batch run — a faster-but-different pipeline
//! must fail the bench, so the CI smoke catches divergence the same way
//! `bench_pr4` catches kernel bit-rot.

use spechd_bench::kernel_bench::{measure_interleaved, write_records, Kernel, KernelRecord};
use spechd_core::{SpecHd, SpecHdConfig, StreamConfig};
use spechd_ms::stream::{sort_dataset_by_mass, AssertSorted, DatasetStream};
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use std::hint::black_box;

const DIM: usize = 2048;

fn main() {
    let mut n = 3000usize;
    let mut samples = 5usize;
    let mut out_path = String::from("BENCH_pr5.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                n = 300;
                samples = 3;
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_pr5 [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let dataset = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: n,
        num_peptides: (n / 5).max(10),
        seed: 0x5BEC5,
        ..SyntheticConfig::default()
    })
    .generate();
    let sorted = sort_dataset_by_mass(&dataset);
    let engine = SpecHd::new(SpecHdConfig::default());
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let wm64 = StreamConfig::default();
    let wm1 = StreamConfig {
        watermark: 1,
        ..StreamConfig::default()
    };
    let no_archive = StreamConfig {
        keep_hypervectors: false,
        ..StreamConfig::default()
    };

    println!("[bench_pr5] n={n} dim={DIM} samples={samples} workers={workers}");

    // ── Bit-identity gates before timing anything. ──
    let batch = engine.run(&dataset);
    for (name, cfg) in [
        ("watermark=64", &wm64),
        ("watermark=1", &wm1),
        ("no_archive", &no_archive),
    ] {
        let streamed = engine.run_streaming(DatasetStream::new(&dataset), cfg);
        assert_eq!(
            streamed.outcome.assignment(),
            batch.assignment(),
            "streaming ({name}) diverged from batch labels"
        );
        assert_eq!(
            streamed.outcome.consensus(),
            batch.consensus(),
            "streaming ({name}) diverged from batch consensus"
        );
    }
    let batch_sorted = engine.run(&sorted);
    let streamed_sorted =
        engine.run_streaming(AssertSorted::new(DatasetStream::new(&sorted)), &wm64);
    assert_eq!(
        streamed_sorted.outcome.assignment(),
        batch_sorted.assignment(),
        "sorted streaming diverged from batch labels"
    );
    println!("[bench_pr5] streaming/batch bit-identity checks passed");

    // Memory-shape observability for the ROADMAP perf notes.
    let probe = engine.run_streaming(DatasetStream::new(&dataset), &wm64);
    let st = probe.stream;
    println!(
        "[bench_pr5] shards={} peak_open={} peak_buffered_raw={} peak_shard_rows={} \
         encode_flushes={} (kept {} of {})",
        st.shards_opened,
        st.peak_open_shards,
        st.peak_buffered_spectra,
        st.peak_shard_rows,
        st.encode_flushes,
        probe.outcome.kept().len(),
        n,
    );

    let mut kernels: Vec<Kernel<'_>> = vec![
        (
            "batch_pipeline",
            workers,
            Box::new(|| {
                black_box(engine.run(black_box(&dataset)));
            }),
        ),
        (
            "streaming_pipeline",
            workers,
            Box::new(|| {
                black_box(engine.run_streaming(DatasetStream::new(black_box(&dataset)), &wm64));
            }),
        ),
        (
            "streaming_pipeline_wm1",
            workers,
            Box::new(|| {
                black_box(engine.run_streaming(DatasetStream::new(black_box(&dataset)), &wm1));
            }),
        ),
        (
            "streaming_sorted",
            workers,
            Box::new(|| {
                black_box(engine.run_streaming(
                    AssertSorted::new(DatasetStream::new(black_box(&sorted))),
                    &wm64,
                ));
            }),
        ),
        (
            "streaming_no_archive",
            workers,
            Box::new(|| {
                black_box(
                    engine.run_streaming(DatasetStream::new(black_box(&dataset)), &no_archive),
                );
            }),
        ),
    ];
    let medians = measure_interleaved(samples, &mut kernels);
    let mut records: Vec<KernelRecord> = Vec::new();
    for ((kernel, threads, _), ns) in kernels.iter().zip(&medians) {
        let rate = n as f64 / (*ns as f64 * 1e-9);
        println!("  {kernel:<24} threads={threads:<2} {ns:>12} ns/op  {rate:>9.0} spectra/s");
        records.push(KernelRecord {
            kernel: kernel.to_string(),
            n,
            dim: DIM,
            threads: *threads,
            ns_per_op: *ns,
        });
    }

    let batch_ns = records[0].ns_per_op.max(1);
    let streaming_ns = records[1].ns_per_op.max(1);
    println!(
        "[bench_pr5] streaming/batch wall-clock ratio: {:.2}x (sorted overlap: {:.2}x)",
        streaming_ns as f64 / batch_ns as f64,
        records[3].ns_per_op.max(1) as f64 / batch_ns as f64,
    );

    write_records(&out_path, &records);
    println!("[bench_pr5] wrote {out_path}");
}
