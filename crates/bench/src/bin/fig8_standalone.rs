//! Regenerates Fig. 8: standalone clustering speedup on PXD000561.
use spechd_bench::{fig8_rows, print_table};

fn main() {
    print_table(
        "Fig. 8: standalone clustering, PXD000561 (paper: SpecHD 80s, HyperSpec 1000s, Falcon ~100x)",
        &["tool", "time (s)", "vs SpecHD"],
        &fig8_rows(),
    );
}
