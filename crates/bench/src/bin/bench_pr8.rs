//! Emits machine-readable incremental-clustering benchmarks as
//! `BENCH_pr8.json`: the batch `SpecHd::run` baseline against the
//! persistent-store incremental mode (cold start, installment replay, and
//! the steady-state single-installment update), plus the store
//! serialization round trip, on one labelled synthetic workload.
//!
//! Usage:
//!
//! ```text
//! bench_pr8 [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks n for the CI regression gate; `--out` defaults to
//! `BENCH_pr8.json`. Output is a JSON array of
//! `{kernel, n, dim, threads, ns_per_op}` records (see
//! `spechd_bench::kernel_bench`); `bench_gate` compares two such files
//! with `batch_pipeline` as the machine-normalizing reference.
//!
//! Before any timing, the incremental mode is checked against batch: the
//! cold start (one installment into an empty store) must be
//! **bit-identical** to `SpecHd::run`, a k-installment replay must pass
//! the default `spechd_metrics::EquivalenceGate`, and the store must
//! survive a serialization round trip bit-identically — a
//! faster-but-different pipeline must fail the bench, so the CI smoke
//! catches divergence the same way `bench_pr4` catches kernel bit-rot.

use spechd_bench::kernel_bench::{measure_interleaved, write_records, Kernel, KernelRecord};
use spechd_core::{ClusterStore, SpecHd, SpecHdConfig};
use spechd_metrics::EquivalenceGate;
use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
use spechd_ms::SpectrumDataset;
use std::hint::black_box;

const DIM: usize = 2048;
const INSTALLMENTS: usize = 5;

/// Splits a dataset into `k` contiguous installments.
fn split(dataset: &SpectrumDataset, k: usize) -> Vec<SpectrumDataset> {
    let chunk = dataset.len().div_ceil(k);
    let mut parts = Vec::with_capacity(k);
    let mut iter = dataset.iter();
    for _ in 0..k {
        let mut part = SpectrumDataset::new();
        for (spectrum, label) in iter.by_ref().take(chunk) {
            part.push(spectrum.clone(), label);
        }
        parts.push(part);
    }
    parts
}

fn main() {
    let mut n = 3000usize;
    let mut samples = 5usize;
    let mut out_path = String::from("BENCH_pr8.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                n = 300;
                samples = 3;
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_pr8 [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let union = SyntheticGenerator::new(SyntheticConfig {
        num_spectra: n,
        num_peptides: (n / 5).max(10),
        seed: 0x5BEC8,
        ..SyntheticConfig::default()
    })
    .generate();
    let parts = split(&union, INSTALLMENTS);
    // The steady-state update workload: the archive already holds the
    // first k-1 installments; one new installment arrives.
    let (last, prefix) = parts.split_last().expect("at least one installment");
    let engine = SpecHd::new(SpecHdConfig::default());
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!("[bench_pr8] n={n} dim={DIM} samples={samples} workers={workers}");

    // ── Equivalence gates before timing anything. ──
    let batch = engine.run(&union);
    let mut cold = engine.new_store().expect("fresh store");
    let cold_out = engine
        .run_incremental(&mut cold, &union)
        .expect("cold-start incremental run");
    assert_eq!(
        cold_out.assignment(),
        batch.assignment(),
        "cold-start incremental diverged from batch labels"
    );

    let mut replayed = engine.new_store().expect("fresh store");
    let mut last_out = None;
    for part in &parts {
        last_out = Some(
            engine
                .run_incremental(&mut replayed, part)
                .expect("installment replay"),
        );
    }
    let replay_out = last_out.expect("INSTALLMENTS > 0");
    let truth: Vec<Option<u32>> = batch
        .kept()
        .iter()
        .map(|&orig| union.labels()[orig])
        .collect();
    let report = EquivalenceGate::default().check(
        replay_out.assignment().labels(),
        batch.assignment().labels(),
        &truth,
    );
    assert!(
        report.passed(),
        "{INSTALLMENTS}-installment replay failed the equivalence gate: {:?}",
        report.violations
    );

    let bytes = replayed.to_bytes();
    let reloaded = ClusterStore::from_bytes(&bytes).expect("round-trip reload");
    assert_eq!(reloaded, replayed, "store round trip lost state");
    assert_eq!(
        reloaded.to_bytes(),
        bytes,
        "store re-serialization is not bit-identical"
    );
    println!(
        "[bench_pr8] equivalence gates passed: cold start bit-identical, \
         k={INSTALLMENTS} NMI {:.4} (ARI {:.4}), store round trip bit-identical",
        report.agreement.nmi, report.agreement.ari,
    );

    // The update kernel's starting archive: everything but the last
    // installment. Cloned per op so each invocation updates the same
    // pre-update state.
    let mut warm = engine.new_store().expect("fresh store");
    for part in prefix {
        engine
            .run_incremental(&mut warm, part)
            .expect("prefix installment");
    }
    println!(
        "[bench_pr8] update workload: archive of {} spectra in {} clusters, +{} new",
        warm.next_spectrum_id(),
        warm.num_clusters(),
        last.len(),
    );

    let mut kernels: Vec<Kernel<'_>> = vec![
        (
            "batch_pipeline",
            workers,
            Box::new(|| {
                black_box(engine.run(black_box(&union)));
            }),
        ),
        (
            "incremental_cold",
            workers,
            Box::new(|| {
                let mut store = engine.new_store().expect("fresh store");
                black_box(
                    engine
                        .run_incremental(&mut store, black_box(&union))
                        .expect("cold incremental"),
                );
            }),
        ),
        (
            "incremental_replay_k5",
            workers,
            Box::new(|| {
                let mut store = engine.new_store().expect("fresh store");
                for part in &parts {
                    black_box(
                        engine
                            .run_incremental(&mut store, black_box(part))
                            .expect("replay installment"),
                    );
                }
            }),
        ),
        (
            "incremental_update",
            workers,
            Box::new(|| {
                let mut store = warm.clone();
                black_box(
                    engine
                        .run_incremental(&mut store, black_box(last))
                        .expect("update installment"),
                );
            }),
        ),
        (
            "store_roundtrip",
            1,
            Box::new(|| {
                let bytes = black_box(&replayed).to_bytes();
                black_box(ClusterStore::from_bytes(&bytes).expect("reload"));
            }),
        ),
    ];
    let medians = measure_interleaved(samples, &mut kernels);
    let mut records: Vec<KernelRecord> = Vec::new();
    for ((kernel, threads, _), ns) in kernels.iter().zip(&medians) {
        let rate = n as f64 / (*ns as f64 * 1e-9);
        println!("  {kernel:<24} threads={threads:<2} {ns:>12} ns/op  {rate:>9.0} spectra/s");
        records.push(KernelRecord {
            kernel: kernel.to_string(),
            n,
            dim: DIM,
            threads: *threads,
            ns_per_op: *ns,
        });
    }

    let batch_ns = records[0].ns_per_op.max(1);
    println!(
        "[bench_pr8] update/batch wall-clock ratio: {:.3}x (cold: {:.2}x, replay k={INSTALLMENTS}: {:.2}x)",
        records[3].ns_per_op.max(1) as f64 / batch_ns as f64,
        records[1].ns_per_op.max(1) as f64 / batch_ns as f64,
        records[2].ns_per_op.max(1) as f64 / batch_ns as f64,
    );

    write_records(&out_path, &records);
    println!("[bench_pr8] wrote {out_path}");
}
