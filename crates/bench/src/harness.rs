//! Minimal, dependency-free microbenchmark harness.
//!
//! The workspace is deliberately std-only (Cargo.lock pins no external
//! crates), so the bench targets cannot link `criterion`. This module
//! provides the small slice of criterion's API the benches use —
//! [`Criterion`], [`BenchmarkId`], [`Throughput`], benchmark groups and
//! the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple warmup-then-measure loop around [`std::time::Instant`].
//!
//! It reports median wall-clock time per iteration and, when a
//! [`Throughput`] is set, derived elements/s or bytes/s. It makes no
//! attempt at criterion's statistical rigor; it exists so `cargo bench`
//! runs everywhere and regressions of 2x+ are visible at a glance.
//!
//! Set `SPECHD_BENCH_JSON=<path>` to additionally append one JSON line per
//! benchmark (`{"kernel": "<group>/<label>", "ns_per_op": N}`) to that
//! file, for scripted consumers. (The `bench_pr4` binary writes its own
//! structured `BENCH_pr4.json` with an interleaved measurement loop.)

use std::fmt::Display;
use std::io::Write as _;
use std::time::Instant;

/// Environment variable naming the JSON-lines sink for benchmark results.
pub const JSON_ENV: &str = "SPECHD_BENCH_JSON";

/// Appends one pre-formatted JSON line to the `SPECHD_BENCH_JSON` sink, if
/// configured. I/O errors are reported to stderr, never panicked on.
pub fn emit_json_line(line: &str) {
    let Some(path) = std::env::var_os(JSON_ENV) else {
        return;
    };
    let open = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path);
    match open {
        Ok(mut f) => {
            if let Err(e) = writeln!(f, "{line}") {
                eprintln!("bench json sink write failed: {e}");
            }
        }
        Err(e) => eprintln!("bench json sink open failed: {e}"),
    }
}

/// Declared per-group throughput, used to derive rates from iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark body processes this many logical elements.
    Elements(u64),
    /// The benchmark body processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier with both a name and a parameter, e.g. `nn_chain/400`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter, e.g. `2048`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed_ns: Vec<u128>,
}

impl Bencher {
    /// Runs `f` repeatedly: a short warmup, then `samples` timed runs.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..self.samples.div_ceil(10).max(1) {
            std::hint::black_box(f());
        }
        self.elapsed_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.elapsed_ns.push(start.elapsed().as_nanos());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.elapsed_ns.is_empty() {
            return 0;
        }
        self.elapsed_ns.sort_unstable();
        self.elapsed_ns[self.elapsed_ns.len() / 2]
    }
}

/// Top-level harness handle; one per bench binary.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n[{name}]");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 30,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (default 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed_ns: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.label, bencher.median_ns());
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is incremental; this is for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, median_ns: u128) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median_ns > 0 => {
                format!("  {:>12.0} elem/s", n as f64 / (median_ns as f64 * 1e-9))
            }
            Some(Throughput::Bytes(n)) if median_ns > 0 => {
                format!(
                    "  {:>12.1} MiB/s",
                    n as f64 / (median_ns as f64 * 1e-9) / (1u64 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("  {label:<28} {}{rate}", format_ns(median_ns));
        emit_json_line(&format!(
            "{{\"kernel\":\"{}/{}\",\"ns_per_op\":{}}}",
            json_escape(&self.name),
            json_escape(label),
            median_ns
        ));
    }
}

/// Escapes the characters that would break a JSON string literal.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:>9.3} s ", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:>9.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:>9.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns:>9} ns")
    }
}

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the given group(s), mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};
