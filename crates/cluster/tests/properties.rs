//! Property-style tests for the clustering substrate.
//!
//! The workspace is dependency-free by design, so instead of `proptest`
//! these tests loop over seeded cases drawn from the in-repo
//! deterministic PRNG; failures are reproducible from the case seed.

use spechd_cluster::{
    dbscan, medoid, naive_hac, nn_chain, ClusterAssignment, CondensedMatrix, DbscanParams, Linkage,
};
use spechd_rng::{Rng, Xoshiro256StarStar};

const CASES: u64 = 48;

const LINKAGES: [Linkage; 4] = [
    Linkage::Single,
    Linkage::Complete,
    Linkage::Average,
    Linkage::Ward,
];

fn random_matrix(n: usize, seed: u64) -> CondensedMatrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    CondensedMatrix::from_fn(n, |_, _| rng.range_f64(0.01, 50.0))
}

fn random_labels(rng: &mut Xoshiro256StarStar, max_label: usize, max_len: usize) -> Vec<usize> {
    let len = rng.range_usize(0, max_len);
    (0..len).map(|_| rng.range_usize(0, max_label)).collect()
}

#[test]
fn nnchain_equals_naive() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x1_0000 + case);
        let n = rng.range_usize(2, 40);
        let linkage = LINKAGES[rng.range_usize(0, LINKAGES.len())];
        let m = random_matrix(n, rng.next_u64());
        let a = nn_chain(&m, linkage);
        let b = naive_hac(&m, linkage);
        let ha = a.dendrogram.heights();
        let hb = b.dendrogram.heights();
        for (x, y) in ha.iter().zip(&hb) {
            assert!((x - y).abs() < 1e-9, "{linkage}: heights differ {x} vs {y}");
        }
        // Identical partitions at any threshold.
        let t = ha[ha.len() / 2];
        assert_eq!(a.dendrogram.cut(t), b.dendrogram.cut(t));
    }
}

#[test]
fn dendrogram_cut_monotone_in_threshold() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x2_0000 + case);
        let n = rng.range_usize(2, 35);
        // Raising the threshold can only reduce (or keep) the cluster count.
        let m = random_matrix(n, rng.next_u64());
        let d = nn_chain(&m, Linkage::Complete).dendrogram;
        let mut prev = usize::MAX;
        for t in [0.0, 5.0, 10.0, 20.0, 40.0, f64::INFINITY] {
            let k = d.cut(t).num_clusters();
            assert!(k <= prev, "cut({t}) gave {k} > previous {prev}");
            prev = k;
        }
        assert_eq!(prev, 1, "infinite threshold must give one cluster");
    }
}

#[test]
fn cut_is_partition() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x3_0000 + case);
        let n = rng.range_usize(2, 35);
        let tfrac = rng.range_f64(0.0, 1.0);
        let m = random_matrix(n, rng.next_u64());
        let d = nn_chain(&m, Linkage::Average).dendrogram;
        let heights = d.heights();
        let t = heights[(tfrac * (heights.len() - 1) as f64) as usize];
        let cut = d.cut(t);
        assert_eq!(cut.len(), n);
        // Every item appears in exactly one cluster.
        let mut seen = vec![false; n];
        for cluster in cut.clusters() {
            for item in cluster {
                assert!(!seen[item], "item {item} in two clusters");
                seen[item] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn single_linkage_heights_match_mst_property() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x4_0000 + case);
        let n = rng.range_usize(2, 25);
        // For single linkage the first merge height must equal the matrix
        // minimum (the shortest edge of the minimum spanning tree).
        let m = random_matrix(n, rng.next_u64());
        let d = nn_chain(&m, Linkage::Single).dendrogram;
        let (_, _, dmin) = m.min_pair().unwrap();
        assert!((d.heights()[0] - dmin).abs() < 1e-9);
    }
}

#[test]
fn linkage_order_complete_geq_single() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x5_0000 + case);
        let n = rng.range_usize(3, 25);
        // At equal merge count the complete-linkage heights dominate the
        // single-linkage heights (standard containment property).
        let m = random_matrix(n, rng.next_u64());
        let hs = nn_chain(&m, Linkage::Single).dendrogram.heights();
        let hc = nn_chain(&m, Linkage::Complete).dendrogram.heights();
        for (s, c) in hs.iter().zip(&hc) {
            assert!(c + 1e-9 >= *s, "complete {c} < single {s}");
        }
    }
}

#[test]
fn dbscan_eps_monotone() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x6_0000 + case);
        let n = rng.range_usize(3, 30);
        // Larger eps can only merge clusters / reduce noise.
        let m = random_matrix(n, rng.next_u64());
        let small = dbscan(
            &m,
            DbscanParams {
                eps: 5.0,
                min_pts: 2,
            },
        );
        let large = dbscan(
            &m,
            DbscanParams {
                eps: 45.0,
                min_pts: 2,
            },
        );
        assert!(large.noise_count() <= small.noise_count());
    }
}

#[test]
fn medoid_minimizes_average_distance() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x7_0000 + case);
        let n = rng.range_usize(2, 20);
        let m = random_matrix(n, rng.next_u64());
        let members: Vec<usize> = (0..n).collect();
        let med = medoid(&m, &members);
        let avg = |c: usize| -> f64 {
            members
                .iter()
                .filter(|&&o| o != c)
                .map(|&o| m.get(c, o))
                .sum()
        };
        let med_avg = avg(med);
        for &c in &members {
            assert!(med_avg <= avg(c) + 1e-9);
        }
    }
}

#[test]
fn assignment_renumbering_idempotent() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x8_0000 + case);
        let raw = random_labels(&mut rng, 10, 60);
        let a = ClusterAssignment::from_raw_labels(&raw);
        let b = ClusterAssignment::from_raw_labels(a.labels());
        assert_eq!(a.labels(), b.labels());
    }
}

#[test]
fn clustered_ratio_bounds() {
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x9_0000 + case);
        let mut raw = random_labels(&mut rng, 8, 60);
        if raw.is_empty() {
            raw.push(rng.range_usize(0, 8));
        }
        let a = ClusterAssignment::from_raw_labels(&raw);
        let r = a.clustered_ratio();
        assert!((0.0..=1.0).contains(&r));
        let sizes = a.sizes();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, raw.len());
    }
}
