//! Property-based tests for the clustering substrate.

use proptest::prelude::*;
use spechd_cluster::{
    dbscan, medoid, naive_hac, nn_chain, ClusterAssignment, CondensedMatrix, DbscanParams,
    Linkage,
};
use spechd_rng::{Rng, Xoshiro256StarStar};

fn random_matrix(n: usize, seed: u64) -> CondensedMatrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    CondensedMatrix::from_fn(n, |_, _| rng.range_f64(0.01, 50.0))
}

fn linkage_strategy() -> impl Strategy<Value = Linkage> {
    prop_oneof![
        Just(Linkage::Single),
        Just(Linkage::Complete),
        Just(Linkage::Average),
        Just(Linkage::Ward),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nnchain_equals_naive(seed in any::<u64>(), n in 2usize..40, linkage in linkage_strategy()) {
        let m = random_matrix(n, seed);
        let a = nn_chain(&m, linkage);
        let b = naive_hac(&m, linkage);
        let ha = a.dendrogram.heights();
        let hb = b.dendrogram.heights();
        for (x, y) in ha.iter().zip(&hb) {
            prop_assert!((x - y).abs() < 1e-9, "{linkage}: heights differ {x} vs {y}");
        }
        // Identical partitions at any threshold.
        let t = ha[ha.len() / 2];
        prop_assert_eq!(a.dendrogram.cut(t), b.dendrogram.cut(t));
    }

    #[test]
    fn dendrogram_cut_monotone_in_threshold(seed in any::<u64>(), n in 2usize..35) {
        // Raising the threshold can only reduce (or keep) the cluster count.
        let m = random_matrix(n, seed);
        let d = nn_chain(&m, Linkage::Complete).dendrogram;
        let mut prev = usize::MAX;
        for t in [0.0, 5.0, 10.0, 20.0, 40.0, f64::INFINITY] {
            let k = d.cut(t).num_clusters();
            prop_assert!(k <= prev, "cut({t}) gave {k} > previous {prev}");
            prev = k;
        }
        prop_assert_eq!(prev, 1, "infinite threshold must give one cluster");
    }

    #[test]
    fn cut_is_partition(seed in any::<u64>(), n in 2usize..35, tfrac in 0.0f64..1.0) {
        let m = random_matrix(n, seed);
        let d = nn_chain(&m, Linkage::Average).dendrogram;
        let heights = d.heights();
        let t = heights[(tfrac * (heights.len() - 1) as f64) as usize];
        let cut = d.cut(t);
        prop_assert_eq!(cut.len(), n);
        // Every item appears in exactly one cluster.
        let mut seen = vec![false; n];
        for cluster in cut.clusters() {
            for item in cluster {
                prop_assert!(!seen[item], "item {item} in two clusters");
                seen[item] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_linkage_heights_match_mst_property(seed in any::<u64>(), n in 2usize..25) {
        // For single linkage, the largest merge height equals the largest
        // edge of the minimum spanning tree; it must never exceed the
        // matrix maximum and the first height must equal the matrix minimum.
        let m = random_matrix(n, seed);
        let d = nn_chain(&m, Linkage::Single).dendrogram;
        let (_, _, dmin) = m.min_pair().unwrap();
        prop_assert!((d.heights()[0] - dmin).abs() < 1e-9);
    }

    #[test]
    fn linkage_order_complete_geq_single(seed in any::<u64>(), n in 3usize..25) {
        // At equal merge count the complete-linkage heights dominate the
        // single-linkage heights (standard containment property).
        let m = random_matrix(n, seed);
        let hs = nn_chain(&m, Linkage::Single).dendrogram.heights();
        let hc = nn_chain(&m, Linkage::Complete).dendrogram.heights();
        for (s, c) in hs.iter().zip(&hc) {
            prop_assert!(c + 1e-9 >= *s, "complete {c} < single {s}");
        }
    }

    #[test]
    fn dbscan_eps_monotone(seed in any::<u64>(), n in 3usize..30) {
        // Larger eps can only merge clusters / reduce noise.
        let m = random_matrix(n, seed);
        let small = dbscan(&m, DbscanParams { eps: 5.0, min_pts: 2 });
        let large = dbscan(&m, DbscanParams { eps: 45.0, min_pts: 2 });
        prop_assert!(large.noise_count() <= small.noise_count());
    }

    #[test]
    fn medoid_minimizes_average_distance(seed in any::<u64>(), n in 2usize..20) {
        let m = random_matrix(n, seed);
        let members: Vec<usize> = (0..n).collect();
        let med = medoid(&m, &members);
        let avg = |c: usize| -> f64 {
            members.iter().filter(|&&o| o != c).map(|&o| m.get(c, o)).sum()
        };
        let med_avg = avg(med);
        for &c in &members {
            prop_assert!(med_avg <= avg(c) + 1e-9);
        }
    }

    #[test]
    fn assignment_renumbering_idempotent(raw in proptest::collection::vec(0usize..10, 0..60)) {
        let a = ClusterAssignment::from_raw_labels(&raw);
        let b = ClusterAssignment::from_raw_labels(a.labels());
        prop_assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn clustered_ratio_bounds(raw in proptest::collection::vec(0usize..8, 1..60)) {
        let a = ClusterAssignment::from_raw_labels(&raw);
        let r = a.clustered_ratio();
        prop_assert!((0.0..=1.0).contains(&r));
        let sizes = a.sizes();
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(total, raw.len());
    }
}
