//! Consensus (medoid) selection.
//!
//! SpecHD's concluding kernel step "calculates a consensus cluster by
//! evaluating the lowest average minimum distance to all other spectra
//! within that cluster, based on the original distance matrix" (§III-C).
//! The medoid spectrum then represents the cluster in downstream database
//! searches.

use crate::{ClusterAssignment, CondensedMatrix};

/// Returns the medoid of `members`: the member with the lowest average
/// distance (from the **original** matrix) to the other members. Ties
/// resolve to the lowest index; a singleton's medoid is its only member.
///
/// # Panics
///
/// Panics if `members` is empty or contains an out-of-range index.
///
/// # Examples
///
/// ```
/// use spechd_cluster::{medoid, CondensedMatrix};
/// // Point 1 sits between 0 and 2.
/// let m = CondensedMatrix::from_fn(3, |i, j| ((i - j) as f64).abs());
/// assert_eq!(medoid(&m, &[0, 1, 2]), 1);
/// ```
pub fn medoid(matrix: &CondensedMatrix, members: &[usize]) -> usize {
    assert!(
        !members.is_empty(),
        "cannot take the medoid of an empty cluster"
    );
    if members.len() == 1 {
        assert!(members[0] < matrix.n(), "member index out of range");
        return members[0];
    }
    let mut best = members[0];
    let mut best_total = f64::INFINITY;
    for &candidate in members {
        assert!(candidate < matrix.n(), "member index out of range");
        let total: f64 = members
            .iter()
            .filter(|&&other| other != candidate)
            .map(|&other| matrix.get(candidate, other))
            .sum();
        if total < best_total {
            best_total = total;
            best = candidate;
        }
    }
    best
}

/// Computes the medoid of every cluster of `assignment`, indexed by
/// cluster label.
///
/// # Panics
///
/// Panics if the assignment length differs from the matrix size.
pub fn medoid_all(matrix: &CondensedMatrix, assignment: &ClusterAssignment) -> Vec<usize> {
    assert_eq!(
        assignment.len(),
        matrix.n(),
        "assignment/matrix size mismatch"
    );
    assignment
        .clusters()
        .iter()
        .map(|members| medoid(matrix, members))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medoid_of_line_is_center() {
        let m = CondensedMatrix::from_fn(5, |i, j| ((i as f64) - (j as f64)).abs());
        assert_eq!(medoid(&m, &[0, 1, 2, 3, 4]), 2);
    }

    #[test]
    fn medoid_of_pair_is_lower_index() {
        let m = CondensedMatrix::from_fn(3, |_, _| 1.0);
        assert_eq!(medoid(&m, &[2, 1]), 2, "first listed wins ties");
        assert_eq!(medoid(&m, &[1, 2]), 1);
    }

    #[test]
    fn singleton_medoid() {
        let m = CondensedMatrix::zeros(3);
        assert_eq!(medoid(&m, &[2]), 2);
    }

    #[test]
    fn medoid_uses_subset_only() {
        // Point 3 is globally central but not in the cluster.
        let m = CondensedMatrix::from_fn(4, |i, j| {
            if i == 3 || j == 3 {
                0.1
            } else {
                ((i as f64) - (j as f64)).abs()
            }
        });
        assert_eq!(medoid(&m, &[0, 1, 2]), 1);
    }

    #[test]
    fn medoid_all_per_cluster() {
        let m = CondensedMatrix::from_fn(6, |i, j| ((i as f64) - (j as f64)).abs());
        let a = ClusterAssignment::from_raw_labels(&[0, 0, 0, 1, 1, 1]);
        assert_eq!(medoid_all(&m, &a), vec![1, 4]);
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_members_panics() {
        medoid(&CondensedMatrix::zeros(2), &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_member_panics() {
        medoid(&CondensedMatrix::zeros(2), &[5]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn medoid_all_size_mismatch_panics() {
        let a = ClusterAssignment::from_raw_labels(&[0, 0]);
        medoid_all(&CondensedMatrix::zeros(3), &a);
    }
}
