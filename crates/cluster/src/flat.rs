//! Flat cluster assignments.

/// A flat clustering of `n` items: a label in `[0, num_clusters)` per item.
///
/// Labels are always canonicalized to be dense and ordered by first
/// appearance, so two assignments that induce the same partition compare
/// equal.
///
/// # Examples
///
/// ```
/// use spechd_cluster::ClusterAssignment;
/// let a = ClusterAssignment::from_raw_labels(&[7, 7, 3, 9]);
/// assert_eq!(a.labels(), &[0, 0, 1, 2]);
/// assert_eq!(a.num_clusters(), 3);
/// assert!((a.clustered_ratio() - 0.5).abs() < 1e-12); // only {0,1} is non-singleton
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterAssignment {
    labels: Vec<usize>,
    num_clusters: usize,
}

impl ClusterAssignment {
    /// Builds an assignment from arbitrary raw labels, renumbering them
    /// densely in order of first appearance.
    pub fn from_raw_labels(raw: &[usize]) -> Self {
        let mut map = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for &r in raw {
            let next = map.len();
            let id = *map.entry(r).or_insert(next);
            labels.push(id);
        }
        Self {
            labels,
            num_clusters: map.len(),
        }
    }

    /// Builds the all-singletons assignment over `n` items.
    pub fn singletons(n: usize) -> Self {
        Self {
            labels: (0..n).collect(),
            num_clusters: n,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Dense cluster label per item.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Member indices of every cluster, indexed by label.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (item, &label) in self.labels.iter().enumerate() {
            out[label].push(item);
        }
        out
    }

    /// Cluster sizes, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.num_clusters];
        for &label in &self.labels {
            out[label] += 1;
        }
        out
    }

    /// Number of singleton clusters.
    pub fn singleton_count(&self) -> usize {
        self.sizes().iter().filter(|&&s| s == 1).count()
    }

    /// Fraction of items that belong to a non-singleton cluster — the
    /// paper's *clustered spectra ratio* (x-axis quantity of Fig. 10).
    pub fn clustered_ratio(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        let sizes = self.sizes();
        let clustered: usize = sizes.iter().filter(|&&s| s > 1).sum();
        clustered as f64 / self.labels.len() as f64
    }

    /// Largest cluster size (0 for empty assignments).
    pub fn max_cluster_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumbering_dense_by_first_appearance() {
        let a = ClusterAssignment::from_raw_labels(&[42, 17, 42, 99, 17]);
        assert_eq!(a.labels(), &[0, 1, 0, 2, 1]);
        assert_eq!(a.num_clusters(), 3);
    }

    #[test]
    fn equal_partitions_compare_equal() {
        let a = ClusterAssignment::from_raw_labels(&[5, 5, 8]);
        let b = ClusterAssignment::from_raw_labels(&[1, 1, 0]);
        assert_eq!(a, b);
    }

    #[test]
    fn clusters_and_sizes() {
        let a = ClusterAssignment::from_raw_labels(&[0, 1, 0, 2, 1, 0]);
        assert_eq!(a.clusters(), vec![vec![0, 2, 5], vec![1, 4], vec![3]]);
        assert_eq!(a.sizes(), vec![3, 2, 1]);
        assert_eq!(a.singleton_count(), 1);
        assert_eq!(a.max_cluster_size(), 3);
    }

    #[test]
    fn clustered_ratio() {
        let a = ClusterAssignment::from_raw_labels(&[0, 0, 1, 2, 3]);
        // 2 of 5 items are in the only non-singleton cluster.
        assert!((a.clustered_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn singletons_constructor() {
        let a = ClusterAssignment::singletons(4);
        assert_eq!(a.num_clusters(), 4);
        assert_eq!(a.clustered_ratio(), 0.0);
        assert_eq!(a.singleton_count(), 4);
    }

    #[test]
    fn empty_assignment() {
        let a = ClusterAssignment::from_raw_labels(&[]);
        assert!(a.is_empty());
        assert_eq!(a.num_clusters(), 0);
        assert_eq!(a.clustered_ratio(), 0.0);
        assert_eq!(a.max_cluster_size(), 0);
    }
}
