//! DBSCAN over a precomputed distance matrix.
//!
//! HyperSpec's faster-but-lower-quality clustering flavour runs DBSCAN (via
//! cuML); SpecHD compares against it in Figs. 9–10. This implementation
//! operates on the same [`CondensedMatrix`] the HAC kernels use.

use crate::{ClusterAssignment, CondensedMatrix};
use std::borrow::Cow;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighborhood radius.
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        Self {
            eps: 0.2,
            min_pts: 2,
        }
    }
}

/// DBSCAN output: an optional cluster id per point (`None` = noise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbscanResult {
    labels: Vec<Option<usize>>,
    num_clusters: usize,
}

impl DbscanResult {
    /// Cluster id per point; `None` marks noise.
    pub fn labels(&self) -> &[Option<usize>] {
        &self.labels
    }

    /// Number of clusters found (noise excluded).
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Converts to a flat assignment, giving each noise point its own
    /// singleton cluster (the convention the quality metrics expect).
    pub fn to_assignment(&self) -> ClusterAssignment {
        let mut next = self.num_clusters;
        let raw: Vec<usize> = self
            .labels
            .iter()
            .map(|l| match l {
                Some(id) => *id,
                None => {
                    next += 1;
                    next - 1
                }
            })
            .collect();
        ClusterAssignment::from_raw_labels(&raw)
    }
}

/// Runs DBSCAN.
///
/// # Panics
///
/// Panics if `min_pts == 0` or `eps` is negative/NaN.
///
/// # Examples
///
/// ```
/// use spechd_cluster::{dbscan, CondensedMatrix, DbscanParams};
/// // Two tight pairs and one far outlier.
/// let m = CondensedMatrix::from_fn(5, |i, j| match (i, j) {
///     (1, 0) => 0.1,
///     (3, 2) => 0.1,
///     _ => 9.0,
/// });
/// let r = dbscan(&m, DbscanParams { eps: 0.5, min_pts: 2 });
/// assert_eq!(r.num_clusters(), 2);
/// assert_eq!(r.noise_count(), 1);
/// ```
pub fn dbscan(matrix: &CondensedMatrix, params: DbscanParams) -> DbscanResult {
    assert!(
        params.eps >= 0.0 && !params.eps.is_nan(),
        "eps must be non-negative"
    );
    let n = matrix.n();
    dbscan_core(n, params.min_pts, &|p| {
        Cow::Owned(
            (0..n)
                .filter(|&q| q != p && matrix.get(p, q) <= params.eps)
                .collect(),
        )
    })
}

/// Runs DBSCAN over precomputed epsilon-neighborhood lists: `neighbors[p]`
/// must hold every point within `eps` of `p`, excluding `p` itself.
///
/// This is the entry point the packed pipeline uses: the lists come from
/// [`spechd_hdc::distance::PackedDistanceEngine::neighbors_within`], so the
/// O(n²) distance matrix is never materialized. Produces labels identical
/// to [`dbscan`] over the corresponding matrix.
///
/// # Panics
///
/// Panics if `min_pts == 0` or any list references an out-of-range point.
pub fn dbscan_from_neighbors(neighbors: &[Vec<usize>], min_pts: usize) -> DbscanResult {
    let n = neighbors.len();
    assert!(
        neighbors.iter().flatten().all(|&q| q < n),
        "neighbor index out of range"
    );
    dbscan_core(n, min_pts, &|p| Cow::Borrowed(neighbors[p].as_slice()))
}

/// Runs DBSCAN directly over a packed hypervector store using the tiled
/// epsilon-neighborhood kernel; `params.eps` is in Hamming-distance bits.
///
/// Label-identical to building a [`CondensedMatrix`] from the pack and
/// calling [`dbscan`], without the O(n²) matrix.
///
/// # Panics
///
/// Panics if `min_pts == 0` or `eps` is negative/NaN.
pub fn dbscan_packed(pack: &spechd_hdc::HvPack, params: DbscanParams) -> DbscanResult {
    assert!(
        params.eps >= 0.0 && !params.eps.is_nan(),
        "eps must be non-negative"
    );
    // Integer distances: d <= eps  ⟺  d <= floor(eps), capped at dim.
    let eps_bits = params.eps.min(pack.dim() as f64).floor() as u32;
    let adjacency = spechd_hdc::distance::neighbors_within(pack, eps_bits);
    dbscan_from_neighbors(&adjacency, params.min_pts)
}

/// The shared expansion loop over an abstract neighborhood oracle. The
/// oracle returns `Cow` so precomputed adjacency is borrowed, not cloned.
fn dbscan_core<'a>(
    n: usize,
    min_pts: usize,
    neighbors: &'a dyn Fn(usize) -> Cow<'a, [usize]>,
) -> DbscanResult {
    assert!(min_pts > 0, "min_pts must be positive");
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut cluster = 0usize;

    for p in 0..n {
        if visited[p] {
            continue;
        }
        visited[p] = true;
        let nbrs = neighbors(p);
        if nbrs.len() + 1 < min_pts {
            continue; // noise (may later be claimed as border point)
        }
        // Expand a new cluster from core point p.
        labels[p] = Some(cluster);
        let mut queue: std::collections::VecDeque<usize> = nbrs.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            if labels[q].is_none() {
                labels[q] = Some(cluster);
            }
            if visited[q] {
                continue;
            }
            visited[q] = true;
            let q_nbrs = neighbors(q);
            if q_nbrs.len() + 1 >= min_pts {
                for &r in q_nbrs.iter() {
                    if !visited[r] || labels[r].is_none() {
                        queue.push_back(r);
                    }
                }
            }
        }
        cluster += 1;
    }
    DbscanResult {
        labels,
        num_clusters: cluster,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2 chained within eps, 3-4 pair, 5 isolated.
    fn chain_matrix() -> CondensedMatrix {
        CondensedMatrix::from_fn(6, |i, j| match (i, j) {
            (1, 0) | (2, 1) => 0.1,
            (2, 0) => 0.18,
            (4, 3) => 0.1,
            _ => 5.0,
        })
    }

    #[test]
    fn basic_two_clusters_one_noise() {
        let r = dbscan(
            &chain_matrix(),
            DbscanParams {
                eps: 0.2,
                min_pts: 2,
            },
        );
        assert_eq!(r.num_clusters(), 2);
        assert_eq!(r.noise_count(), 1);
        assert_eq!(r.labels()[0], r.labels()[1]);
        assert_eq!(r.labels()[1], r.labels()[2]);
        assert_eq!(r.labels()[3], r.labels()[4]);
        assert_ne!(r.labels()[0], r.labels()[3]);
        assert_eq!(r.labels()[5], None);
    }

    #[test]
    fn density_chaining_transitive() {
        // With eps=0.15 the (2,0)=0.18 link is gone but 0-1-2 still chains
        // through point 1.
        let r = dbscan(
            &chain_matrix(),
            DbscanParams {
                eps: 0.15,
                min_pts: 2,
            },
        );
        assert_eq!(r.labels()[0], r.labels()[2]);
    }

    #[test]
    fn min_pts_three_dissolves_pairs() {
        let r = dbscan(
            &chain_matrix(),
            DbscanParams {
                eps: 0.2,
                min_pts: 3,
            },
        );
        // The 3-4 pair has only 2 members: noise. Chain 0-1-2: point 1 has
        // two neighbors (0, 2) => core with min_pts=3.
        assert_eq!(r.num_clusters(), 1);
        assert_eq!(r.labels()[3], None);
        assert_eq!(r.labels()[4], None);
    }

    #[test]
    fn everything_noise_with_tiny_eps() {
        let r = dbscan(
            &chain_matrix(),
            DbscanParams {
                eps: 0.01,
                min_pts: 2,
            },
        );
        assert_eq!(r.num_clusters(), 0);
        assert_eq!(r.noise_count(), 6);
    }

    #[test]
    fn everything_one_cluster_with_huge_eps() {
        let r = dbscan(
            &chain_matrix(),
            DbscanParams {
                eps: 100.0,
                min_pts: 2,
            },
        );
        assert_eq!(r.num_clusters(), 1);
        assert_eq!(r.noise_count(), 0);
    }

    #[test]
    fn to_assignment_gives_noise_singletons() {
        let r = dbscan(
            &chain_matrix(),
            DbscanParams {
                eps: 0.2,
                min_pts: 2,
            },
        );
        let a = r.to_assignment();
        assert_eq!(a.num_clusters(), 3); // 2 clusters + 1 noise singleton
        assert_eq!(a.len(), 6);
        assert_eq!(a.singleton_count(), 1);
    }

    #[test]
    fn deterministic() {
        let p = DbscanParams {
            eps: 0.2,
            min_pts: 2,
        };
        assert_eq!(dbscan(&chain_matrix(), p), dbscan(&chain_matrix(), p));
    }

    #[test]
    fn from_neighbors_matches_matrix_path() {
        let m = chain_matrix();
        let params = DbscanParams {
            eps: 0.2,
            min_pts: 2,
        };
        let lists: Vec<Vec<usize>> = (0..m.n())
            .map(|p| {
                (0..m.n())
                    .filter(|&q| q != p && m.get(p, q) <= params.eps)
                    .collect()
            })
            .collect();
        assert_eq!(
            dbscan_from_neighbors(&lists, params.min_pts),
            dbscan(&m, params)
        );
    }

    #[test]
    fn packed_matches_matrix_path_on_hypervectors() {
        use spechd_hdc::{BinaryHypervector, HvPack};
        use spechd_rng::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        // Three noisy copies each of two prototypes, plus two random points.
        let mut hvs = Vec::new();
        for _ in 0..2 {
            let proto = BinaryHypervector::random(512, &mut rng);
            for _ in 0..3 {
                let mut member = proto.clone();
                member.flip_random_bits(20, &mut rng);
                hvs.push(member);
            }
        }
        hvs.push(BinaryHypervector::random(512, &mut rng));
        hvs.push(BinaryHypervector::random(512, &mut rng));
        let params = DbscanParams {
            eps: 80.0,
            min_pts: 2,
        };
        let pack = HvPack::from_hypervectors(512, &hvs);
        let via_pack = dbscan_packed(&pack, params);
        let via_matrix = dbscan(&CondensedMatrix::from_pack(&pack), params);
        assert_eq!(via_pack, via_matrix);
        assert_eq!(via_pack.num_clusters(), 2);
    }

    #[test]
    #[should_panic(expected = "neighbor index")]
    fn from_neighbors_rejects_out_of_range() {
        dbscan_from_neighbors(&[vec![1], vec![2]], 1);
    }

    #[test]
    #[should_panic(expected = "min_pts")]
    fn zero_min_pts_panics() {
        dbscan(
            &chain_matrix(),
            DbscanParams {
                eps: 0.1,
                min_pts: 0,
            },
        );
    }
}
