//! Classic O(n³) hierarchical agglomerative clustering (the Fig. 2
//! baseline).

use crate::{CondensedMatrix, Dendrogram, HacResult, HacStats, Linkage};

/// Runs the textbook greedy HAC: at every step, scan the *entire* active
/// distance matrix for the global minimum pair, merge it, and update.
///
/// This is the baseline the paper contrasts with NN-chain in Fig. 2:
/// "these algorithms require full matrix updates to calculate pairwise
/// distances between all data points and to identify the minimum distance
/// among all pairs" — O(n³) total comparisons versus NN-chain's O(n²).
///
/// For the reducible linkages in [`Linkage`] the dendrogram is identical
/// to [`crate::nn_chain`]'s (up to ties).
///
/// # Panics
///
/// Panics if the matrix contains NaN distances.
///
/// # Examples
///
/// ```
/// use spechd_cluster::{naive_hac, nn_chain, CondensedMatrix, Linkage};
/// let m = CondensedMatrix::from_condensed(3, vec![1.0, 4.0, 2.0]);
/// let a = naive_hac(&m, Linkage::Average);
/// let b = nn_chain(&m, Linkage::Average);
/// assert_eq!(a.dendrogram, b.dendrogram);
/// ```
pub fn naive_hac(matrix: &CondensedMatrix, linkage: Linkage) -> HacResult {
    let n = matrix.n();
    let mut stats = HacStats::default();
    if n == 1 {
        return HacResult {
            dendrogram: Dendrogram::from_raw_merges(1, vec![]),
            stats,
        };
    }
    let mut d = matrix.clone();
    let mut size = vec![1usize; n];
    let mut active = vec![true; n];
    let mut raw: Vec<(usize, usize, f64)> = Vec::with_capacity(n - 1);

    for _ in 0..n - 1 {
        // Full scan over all active pairs.
        let mut best = (usize::MAX, usize::MAX);
        let mut best_d = f64::INFINITY;
        for i in 1..n {
            if !active[i] {
                continue;
            }
            for (j, &active_j) in active.iter().enumerate().take(i) {
                if !active_j {
                    continue;
                }
                stats.comparisons += 1;
                let dij = d.get(i, j);
                assert!(!dij.is_nan(), "distance matrix contains NaN");
                if dij < best_d {
                    best_d = dij;
                    best = (i, j);
                }
            }
        }
        let (a, b) = best;
        for k in 0..n {
            if !active[k] || k == a || k == b {
                continue;
            }
            let updated =
                linkage.update(d.get(a, k), d.get(b, k), best_d, size[a], size[b], size[k]);
            d.set(a, k, updated);
            stats.updates += 1;
        }
        size[a] += size[b];
        active[b] = false;
        raw.push((a, b, best_d));
        stats.merges += 1;
    }
    HacResult {
        dendrogram: Dendrogram::from_raw_merges(n, raw),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn_chain;
    use spechd_rng::{Rng, Xoshiro256StarStar};

    fn random_matrix(n: usize, seed: u64) -> CondensedMatrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        CondensedMatrix::from_fn(n, |_, _| rng.range_f64(0.1, 100.0))
    }

    #[test]
    fn matches_nnchain_on_random_inputs() {
        // Random continuous distances have no ties, so the dendrograms
        // must agree exactly for every reducible linkage.
        for linkage in Linkage::ALL {
            for seed in 0..6 {
                let m = random_matrix(30, seed * 7 + 1);
                let a = naive_hac(&m, linkage);
                let b = nn_chain(&m, linkage);
                let ha = a.dendrogram.heights();
                let hb = b.dendrogram.heights();
                for (x, y) in ha.iter().zip(&hb) {
                    assert!((x - y).abs() < 1e-9, "{linkage} seed {seed}: {x} vs {y}");
                }
                // Same flat clusters at several thresholds.
                for frac in [0.25, 0.5, 0.75] {
                    let t = ha[(ha.len() as f64 * frac) as usize];
                    assert_eq!(
                        a.dendrogram.cut(t),
                        b.dendrogram.cut(t),
                        "{linkage} seed {seed} cut {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn naive_does_cubically_more_comparisons() {
        let n = 100;
        let m = random_matrix(n, 2);
        let naive = naive_hac(&m, Linkage::Complete);
        let chain = nn_chain(&m, Linkage::Complete);
        // Naive is Θ(n³) comparisons, NN-chain Θ(n²): the gap must be wide.
        assert!(
            naive.stats.comparisons > 5 * chain.stats.comparisons,
            "naive {} vs chain {}",
            naive.stats.comparisons,
            chain.stats.comparisons
        );
    }

    #[test]
    fn merge_heights_non_decreasing() {
        for linkage in Linkage::ALL {
            let m = random_matrix(40, 5);
            let r = naive_hac(&m, linkage);
            assert!(r.dendrogram.is_monotonic(), "{linkage}");
        }
    }

    #[test]
    fn single_point() {
        let r = naive_hac(&CondensedMatrix::zeros(1), Linkage::Single);
        assert!(r.dendrogram.merges().is_empty());
    }

    #[test]
    fn first_merge_is_global_minimum() {
        let m = random_matrix(20, 8);
        let (_, _, dmin) = m.min_pair().unwrap();
        let r = naive_hac(&m, Linkage::Ward);
        assert_eq!(r.dendrogram.merges()[0].height, dmin);
    }

    #[test]
    fn update_count_is_quadratic_total() {
        let n = 50;
        let m = random_matrix(n, 3);
        let r = naive_hac(&m, Linkage::Average);
        // Each of the n-1 merges updates at most n-2 entries.
        assert!(r.stats.updates <= ((n - 1) * (n - 2)) as u64);
        assert!(r.stats.updates >= (n - 2) as u64);
    }
}
