//! Linkage criteria and Lance–Williams distance updates.

/// Linkage criterion for hierarchical agglomerative clustering.
///
/// The SpecHD kernel is parameterized over the linkage ("our architecture
/// is flexible and supports various linkage criteria, including Ward,
/// single linkage, and complete linkage", §III-C); the paper's evaluation
/// settles on **complete** linkage (Fig. 6a).
///
/// All four criteria are *reducible*, which is what makes the NN-chain
/// algorithm produce the same dendrogram as naive greedy HAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Minimum inter-cluster distance.
    Single,
    /// Maximum inter-cluster distance (SpecHD's default).
    #[default]
    Complete,
    /// Size-weighted average distance (UPGMA).
    Average,
    /// Ward's minimum-variance criterion, applied to the provided
    /// dissimilarities (the `ward.D` convention for precomputed matrices).
    Ward,
}

impl Linkage {
    /// All supported criteria, in the order used by reports.
    pub const ALL: [Linkage; 4] = [
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
        Linkage::Ward,
    ];

    /// Lance–Williams update: the distance from the merged cluster
    /// `A ∪ B` to an outside cluster `I`, given the prior distances
    /// `d(A,I)`, `d(B,I)`, `d(A,B)` and the cluster sizes.
    ///
    /// # Examples
    ///
    /// ```
    /// use spechd_cluster::Linkage;
    /// assert_eq!(Linkage::Single.update(2.0, 5.0, 1.0, 1, 1, 1), 2.0);
    /// assert_eq!(Linkage::Complete.update(2.0, 5.0, 1.0, 1, 1, 1), 5.0);
    /// assert_eq!(Linkage::Average.update(2.0, 5.0, 1.0, 1, 3, 1), 4.25);
    /// ```
    pub fn update(
        self,
        d_ai: f64,
        d_bi: f64,
        d_ab: f64,
        size_a: usize,
        size_b: usize,
        size_i: usize,
    ) -> f64 {
        match self {
            Linkage::Single => d_ai.min(d_bi),
            Linkage::Complete => d_ai.max(d_bi),
            Linkage::Average => {
                let (na, nb) = (size_a as f64, size_b as f64);
                (na * d_ai + nb * d_bi) / (na + nb)
            }
            Linkage::Ward => {
                let (na, nb, ni) = (size_a as f64, size_b as f64, size_i as f64);
                let total = na + nb + ni;
                ((na + ni) * d_ai + (nb + ni) * d_bi - ni * d_ab) / total
            }
        }
    }

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
            Linkage::Ward => "ward",
        }
    }
}

impl std::fmt::Display for Linkage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Linkage {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "single" => Ok(Linkage::Single),
            "complete" => Ok(Linkage::Complete),
            "average" | "upgma" => Ok(Linkage::Average),
            "ward" => Ok(Linkage::Ward),
            other => Err(format!("unknown linkage {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_complete_extremes() {
        assert_eq!(Linkage::Single.update(3.0, 7.0, 1.0, 2, 5, 4), 3.0);
        assert_eq!(Linkage::Complete.update(3.0, 7.0, 1.0, 2, 5, 4), 7.0);
    }

    #[test]
    fn average_is_size_weighted() {
        // (2*3 + 6*7)/8 = 6.0
        assert_eq!(Linkage::Average.update(3.0, 7.0, 0.0, 2, 6, 1), 6.0);
        // Equal sizes -> arithmetic mean.
        assert_eq!(Linkage::Average.update(3.0, 7.0, 0.0, 4, 4, 1), 5.0);
    }

    #[test]
    fn ward_formula() {
        // na=1, nb=1, ni=1: ((2)*dai + (2)*dbi - dab) / 3.
        let d = Linkage::Ward.update(3.0, 6.0, 1.5, 1, 1, 1);
        assert!((d - (2.0 * 3.0 + 2.0 * 6.0 - 1.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn updates_between_bounds_for_single_complete() {
        // For single/complete the update must lie within [min, max] of inputs.
        for (dai, dbi) in [(1.0, 9.0), (4.0, 4.5), (0.0, 2.0)] {
            let s = Linkage::Single.update(dai, dbi, 0.5, 3, 2, 1);
            let c = Linkage::Complete.update(dai, dbi, 0.5, 3, 2, 1);
            assert!(s <= c);
            assert_eq!(s, dai.min(dbi));
            assert_eq!(c, dai.max(dbi));
        }
    }

    #[test]
    fn average_between_inputs() {
        let a = Linkage::Average.update(2.0, 8.0, 0.0, 3, 5, 1);
        assert!(a > 2.0 && a < 8.0);
    }

    #[test]
    fn names_and_parse() {
        for l in Linkage::ALL {
            assert_eq!(l.name().parse::<Linkage>().unwrap(), l);
            assert_eq!(l.to_string(), l.name());
        }
        assert!("bogus".parse::<Linkage>().is_err());
        assert_eq!("UPGMA".parse::<Linkage>().unwrap(), Linkage::Average);
    }

    #[test]
    fn default_is_complete() {
        assert_eq!(Linkage::default(), Linkage::Complete);
    }
}
