//! The Nearest-Neighbor-Chain HAC algorithm.

use crate::{CondensedMatrix, Dendrogram, HacResult, HacStats, Linkage};

/// Runs NN-chain hierarchical agglomerative clustering over a precomputed
/// distance matrix.
///
/// The algorithm (§II-C of the SpecHD paper; Murtagh & Contreras 2011)
/// grows a chain of successive nearest neighbors until it finds a
/// *reciprocal nearest neighbor* (RNN) pair, merges it, updates the
/// distance matrix with the Lance–Williams rule for the chosen
/// [`Linkage`], and continues from the surviving chain — avoiding the full
/// matrix re-scan per merge that makes classic HAC O(n³).
///
/// For the reducible linkages implemented here the result is identical to
/// [`crate::naive_hac`] (up to tie-breaking on exactly equal distances);
/// total work is O(n²) comparisons.
///
/// # Panics
///
/// Panics if the matrix contains NaN distances.
///
/// # Examples
///
/// ```
/// use spechd_cluster::{nn_chain, CondensedMatrix, Linkage};
/// let m = CondensedMatrix::from_condensed(3, vec![1.0, 4.0, 2.0]);
/// let result = nn_chain(&m, Linkage::Complete);
/// assert_eq!(result.dendrogram.merges().len(), 2);
/// assert!(result.dendrogram.is_monotonic());
/// ```
pub fn nn_chain(matrix: &CondensedMatrix, linkage: Linkage) -> HacResult {
    let n = matrix.n();
    let mut stats = HacStats::default();
    if n == 1 {
        return HacResult {
            dendrogram: Dendrogram::from_raw_merges(1, vec![]),
            stats,
        };
    }
    let mut d = matrix.clone();
    let mut size = vec![1usize; n];
    let mut active = vec![true; n];
    let mut raw: Vec<(usize, usize, f64)> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut scan_from = 0usize;

    while raw.len() < n - 1 {
        if chain.is_empty() {
            while !active[scan_from] {
                scan_from += 1;
            }
            chain.push(scan_from);
        }
        loop {
            let a = *chain.last().expect("chain is non-empty inside the loop");
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };

            // Nearest active neighbor of `a`; ties prefer the previous
            // chain element so an RNN is detected and the loop terminates.
            let (mut best, mut best_d) = match prev {
                Some(p) => {
                    stats.comparisons += 1;
                    (p, d.get(a, p))
                }
                None => (usize::MAX, f64::INFINITY),
            };
            for (j, &active_j) in active.iter().enumerate().take(n) {
                if j == a || !active_j || Some(j) == prev {
                    continue;
                }
                stats.comparisons += 1;
                let dj = d.get(a, j);
                assert!(!dj.is_nan(), "distance matrix contains NaN");
                if dj < best_d {
                    best_d = dj;
                    best = j;
                }
            }
            debug_assert!(best != usize::MAX, "an active neighbor always exists");

            if Some(best) == prev {
                // Reciprocal nearest neighbors: merge `a` and `best`.
                chain.pop();
                chain.pop();
                let b = best;
                for k in 0..n {
                    if !active[k] || k == a || k == b {
                        continue;
                    }
                    let updated =
                        linkage.update(d.get(a, k), d.get(b, k), best_d, size[a], size[b], size[k]);
                    d.set(a, k, updated);
                    stats.updates += 1;
                }
                size[a] += size[b];
                active[b] = false;
                raw.push((a, b, best_d));
                stats.merges += 1;
                break;
            }
            chain.push(best);
        }
    }
    HacResult {
        dendrogram: Dendrogram::from_raw_merges(n, raw),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_rng::{Rng, Xoshiro256StarStar};

    fn random_matrix(n: usize, seed: u64) -> CondensedMatrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        CondensedMatrix::from_fn(n, |_, _| rng.range_f64(0.1, 100.0))
    }

    #[test]
    fn two_points() {
        let m = CondensedMatrix::from_condensed(2, vec![3.5]);
        let r = nn_chain(&m, Linkage::Complete);
        assert_eq!(r.dendrogram.merges().len(), 1);
        assert_eq!(r.dendrogram.merges()[0].height, 3.5);
        assert_eq!(r.stats.merges, 1);
    }

    #[test]
    fn single_point() {
        let m = CondensedMatrix::zeros(1);
        let r = nn_chain(&m, Linkage::Single);
        assert!(r.dendrogram.merges().is_empty());
    }

    #[test]
    fn well_separated_pairs_single_linkage() {
        // {0,1} at 1.0, {2,3} at 1.5, inter-group 50.
        let m = CondensedMatrix::from_fn(4, |i, j| {
            if (i < 2) == (j < 2) {
                if i < 2 {
                    1.0
                } else {
                    1.5
                }
            } else {
                50.0
            }
        });
        for linkage in Linkage::ALL {
            let dend = nn_chain(&m, linkage).dendrogram;
            let cut = dend.cut(10.0);
            assert_eq!(cut.num_clusters(), 2, "{linkage}");
            assert_eq!(cut.labels()[0], cut.labels()[1]);
            assert_eq!(cut.labels()[2], cut.labels()[3]);
        }
    }

    #[test]
    fn monotonic_for_all_linkages() {
        for linkage in Linkage::ALL {
            for seed in 0..5 {
                let m = random_matrix(40, seed);
                let r = nn_chain(&m, linkage);
                assert!(r.dendrogram.is_monotonic(), "{linkage} seed {seed}");
                assert_eq!(r.dendrogram.merges().len(), 39);
            }
        }
    }

    #[test]
    fn comparisons_quadratic_not_cubic() {
        // NN-chain on n points must do O(n^2) comparisons; allow a
        // generous constant but reject n^3 growth.
        let n = 120;
        let m = random_matrix(n, 9);
        let r = nn_chain(&m, Linkage::Complete);
        let n_u64 = n as u64;
        assert!(
            r.stats.comparisons < 8 * n_u64 * n_u64,
            "comparisons {} look super-quadratic",
            r.stats.comparisons
        );
    }

    #[test]
    fn ties_terminate() {
        // All-equal distances are the worst case for chain cycling.
        let m = CondensedMatrix::from_fn(12, |_, _| 1.0);
        let r = nn_chain(&m, Linkage::Average);
        assert_eq!(r.dendrogram.merges().len(), 11);
        assert!(r.dendrogram.heights().iter().all(|&h| h == 1.0));
    }

    #[test]
    fn deterministic() {
        let m = random_matrix(30, 3);
        let a = nn_chain(&m, Linkage::Ward);
        let b = nn_chain(&m, Linkage::Ward);
        assert_eq!(a.dendrogram, b.dendrogram);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn complete_linkage_height_is_max_pairwise_within_cluster() {
        // For complete linkage, cutting at threshold t guarantees every
        // within-cluster pairwise distance <= the height of the top merge
        // of that cluster; verify against the original matrix.
        let m = random_matrix(25, 4);
        let dend = nn_chain(&m, Linkage::Complete).dendrogram;
        let t = dend.heights()[12]; // mid-tree threshold
        let cut = dend.cut(t);
        for cluster in cut.clusters() {
            for (ai, &a) in cluster.iter().enumerate() {
                for &b in &cluster[ai + 1..] {
                    assert!(
                        m.get(a, b) <= t + 1e-9,
                        "pair ({a},{b}) = {} exceeds threshold {t}",
                        m.get(a, b)
                    );
                }
            }
        }
    }
}
