//! Deterministic merging of per-shard clusterings into one global
//! assignment.
//!
//! SpecHD never clusters across precursor-mass buckets, so a full run is a
//! set of independent per-bucket (per-shard) clusterings that must be
//! stitched into one flat [`ClusterAssignment`]. [`ShardLabelMerger`] is
//! that stitching, shared verbatim by the batch pipeline and the streaming
//! sharded pipeline in `spechd-core` — which is what makes the two modes
//! bit-identical by construction: as long as shards are added in the same
//! order (ascending bucket key) with the same per-shard labels, the merged
//! result cannot differ.

use crate::{ClusterAssignment, HacStats};

/// Accumulates per-shard flat clusterings over disjoint item subsets into
/// one dense global assignment with deterministic cluster IDs.
///
/// IDs are assigned in two steps: each shard's local clusters get a
/// contiguous raw-label block in the order shards are added, then
/// [`ClusterAssignment::from_raw_labels`] renumbers densely by first
/// appearance in *item* order. Callers therefore fix determinism by fixing
/// the shard-add order — both SpecHD pipelines use ascending bucket key.
///
/// # Examples
///
/// ```
/// use spechd_cluster::{HacStats, ShardLabelMerger};
///
/// // Items {0,2} cluster together in shard A; item 1 is alone in shard B.
/// let mut merger = ShardLabelMerger::new(3);
/// merger.add_shard(&[0, 2], &[0, 0], &[0], &HacStats::default());
/// merger.add_shard(&[1], &[0], &[1], &HacStats::default());
/// let (assignment, consensus, _) = merger.finish();
/// assert_eq!(assignment.labels(), &[0, 1, 0]);
/// assert_eq!(consensus, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct ShardLabelMerger {
    raw_labels: Vec<usize>,
    medoid_by_raw: Vec<usize>,
    next_cluster: usize,
    covered: usize,
    stats: HacStats,
}

impl ShardLabelMerger {
    /// Creates a merger over `total` items; every item must be covered by
    /// exactly one subsequent [`ShardLabelMerger::add_shard`] call.
    pub fn new(total: usize) -> Self {
        Self {
            // MAX marks "not yet covered", so double coverage is caught at
            // `add_shard` and missing coverage cannot hide behind a
            // matching total count.
            raw_labels: vec![usize::MAX; total],
            medoid_by_raw: Vec::new(),
            next_cluster: 0,
            covered: 0,
            stats: HacStats::default(),
        }
    }

    /// Adds one shard's clustering.
    ///
    /// * `members` — global item indices of the shard, in shard-local
    ///   order.
    /// * `local_labels` — per-member cluster label in
    ///   `[0, num_local_clusters)`, parallel to `members`.
    /// * `medoids` — one representative *global item index* per local
    ///   cluster (entry `c` represents local cluster `c`).
    /// * `stats` — the shard's HAC work counters, folded into the total.
    ///
    /// # Panics
    ///
    /// Panics if `members` and `local_labels` lengths differ, an item index
    /// is out of bounds or already covered by an earlier shard, or a local
    /// label is not covered by `medoids`.
    pub fn add_shard(
        &mut self,
        members: &[usize],
        local_labels: &[usize],
        medoids: &[usize],
        stats: &HacStats,
    ) {
        assert_eq!(
            members.len(),
            local_labels.len(),
            "members/labels length mismatch"
        );
        for (&member, &local) in members.iter().zip(local_labels) {
            assert!(
                local < medoids.len(),
                "local label {local} has no medoid (shard has {})",
                medoids.len()
            );
            assert!(
                self.raw_labels[member] == usize::MAX,
                "item {member} covered by more than one shard"
            );
            self.raw_labels[member] = self.next_cluster + local;
        }
        self.medoid_by_raw.extend_from_slice(medoids);
        self.next_cluster += medoids.len();
        self.covered += members.len();
        self.stats.comparisons += stats.comparisons;
        self.stats.updates += stats.updates;
        self.stats.merges += stats.merges;
    }

    /// Number of items covered by shards so far.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Finalizes: dense renumbering by first appearance in item order,
    /// with the per-cluster consensus (medoid) indices re-aligned to the
    /// dense labels. Returns `(assignment, consensus, aggregate stats)`.
    ///
    /// # Panics
    ///
    /// Panics if the shards added do not cover every item exactly once.
    pub fn finish(self) -> (ClusterAssignment, Vec<usize>, HacStats) {
        assert_eq!(
            self.covered,
            self.raw_labels.len(),
            "shards must cover every item exactly once"
        );
        let assignment = ClusterAssignment::from_raw_labels(&self.raw_labels);
        let mut consensus = vec![usize::MAX; assignment.num_clusters()];
        for (item, &dense) in assignment.labels().iter().enumerate() {
            consensus[dense] = self.medoid_by_raw[self.raw_labels[item]];
        }
        debug_assert!(consensus.iter().all(|&c| c != usize::MAX));
        (assignment, consensus, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_merger_finishes_empty() {
        let (assignment, consensus, stats) = ShardLabelMerger::new(0).finish();
        assert!(assignment.is_empty());
        assert_eq!(assignment.num_clusters(), 0);
        assert!(consensus.is_empty());
        assert_eq!(stats, HacStats::default());
    }

    #[test]
    fn dense_ids_follow_item_order_across_shards() {
        // Shard order differs from item order: the first *item* decides
        // dense label 0 regardless of which shard carried it.
        let mut merger = ShardLabelMerger::new(4);
        merger.add_shard(&[2, 3], &[0, 1], &[2, 3], &HacStats::default());
        merger.add_shard(&[0, 1], &[0, 0], &[1], &HacStats::default());
        let (assignment, consensus, _) = merger.finish();
        assert_eq!(assignment.labels(), &[0, 0, 1, 2]);
        assert_eq!(consensus, vec![1, 2, 3]);
    }

    #[test]
    fn stats_accumulate() {
        let mut merger = ShardLabelMerger::new(2);
        let s = HacStats {
            comparisons: 3,
            updates: 2,
            merges: 1,
        };
        merger.add_shard(&[0], &[0], &[0], &s);
        merger.add_shard(&[1], &[0], &[1], &s);
        let (_, _, total) = merger.finish();
        assert_eq!(total.comparisons, 6);
        assert_eq!(total.updates, 4);
        assert_eq!(total.merges, 2);
    }

    #[test]
    #[should_panic(expected = "cover every item")]
    fn missing_items_panic() {
        let mut merger = ShardLabelMerger::new(3);
        merger.add_shard(&[0, 1], &[0, 0], &[0], &HacStats::default());
        let _ = merger.finish();
    }

    #[test]
    #[should_panic(expected = "more than one shard")]
    fn double_coverage_panics() {
        // A matching total count must not mask double-covered + missing
        // items: item 0 twice + item 1 once is 3 = total, but wrong.
        let mut merger = ShardLabelMerger::new(3);
        merger.add_shard(&[0, 0], &[0, 0], &[0], &HacStats::default());
        merger.add_shard(&[1], &[0], &[1], &HacStats::default());
    }

    #[test]
    #[should_panic(expected = "no medoid")]
    fn label_without_medoid_panics() {
        let mut merger = ShardLabelMerger::new(1);
        merger.add_shard(&[0], &[1], &[0], &HacStats::default());
    }
}
