//! Clustering substrate for SpecHD.
//!
//! Implements the algorithms of §II-C and §III-C of the SpecHD paper:
//!
//! * [`CondensedMatrix`] — lower-triangular pairwise distance storage
//!   (the paper retains only the lower triangle in 16-bit fixed point;
//!   [`CondensedMatrix::from_u16`] ingests exactly that form).
//! * [`Linkage`] — Lance–Williams update rules for single, complete,
//!   average and Ward linkage (the paper's kernel supports all of these;
//!   complete linkage is its default).
//! * [`nn_chain`] — the Nearest-Neighbor-Chain HAC algorithm (Murtagh &
//!   Contreras 2011): O(n²) time, no full-matrix re-scan per merge.
//! * [`naive_hac`] — the classic O(n³) HAC baseline the paper compares
//!   against in Fig. 2.
//! * [`Dendrogram`] — merge tree with threshold cutting into flat clusters.
//! * [`dbscan`] — density clustering over the same matrices
//!   (the HyperSpec-DBSCAN comparison flavour); [`dbscan_packed`] runs it
//!   straight off a packed hypervector store via the tiled
//!   epsilon-neighborhood kernel, never materializing the O(n²) matrix.
//! * [`medoid`] — consensus selection: the member with the lowest average
//!   distance to the rest of its cluster, per §III-C.
//! * [`ShardLabelMerger`] — deterministic stitching of independent
//!   per-bucket clusterings into one global [`ClusterAssignment`], shared
//!   by the batch and streaming pipelines.
//!
//! # Example
//!
//! ```
//! use spechd_cluster::{nn_chain, CondensedMatrix, Linkage};
//!
//! // Two tight pairs far apart: {0,1} and {2,3}.
//! let m = CondensedMatrix::from_fn(4, |i, j| {
//!     if (i < 2) == (j < 2) { 1.0 } else { 10.0 }
//! });
//! let dendrogram = nn_chain(&m, Linkage::Complete).dendrogram;
//! let labels = dendrogram.cut(5.0);
//! assert_eq!(labels.labels()[0], labels.labels()[1]);
//! assert_eq!(labels.labels()[2], labels.labels()[3]);
//! assert_ne!(labels.labels()[0], labels.labels()[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod condensed;
mod consensus;
mod dbscan;
mod dendrogram;
mod flat;
mod linkage;
mod merge;
mod naive;
mod nnchain;

pub use condensed::CondensedMatrix;
pub use consensus::{medoid, medoid_all};
pub use dbscan::{dbscan, dbscan_from_neighbors, dbscan_packed, DbscanParams, DbscanResult};
pub use dendrogram::{Dendrogram, Merge};
pub use flat::ClusterAssignment;
pub use linkage::Linkage;
pub use merge::ShardLabelMerger;
pub use naive::naive_hac;
pub use nnchain::nn_chain;

/// Statistics describing the work performed by a HAC run; the currency of
/// the paper's Fig. 2 (naive vs NN-chain) comparison and the cycle model
/// in `spechd-fpga`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HacStats {
    /// Pairwise distance comparisons performed while searching minima.
    pub comparisons: u64,
    /// Lance–Williams distance updates applied after merges.
    pub updates: u64,
    /// Number of merges (always `n - 1` for a complete run).
    pub merges: u64,
}

/// Output of a HAC run: the merge tree plus work statistics.
#[derive(Debug, Clone)]
pub struct HacResult {
    /// The dendrogram (merges sorted by height).
    pub dendrogram: Dendrogram,
    /// Work counters.
    pub stats: HacStats,
}
