//! Lower-triangular (condensed) pairwise distance matrix.

use std::fmt;

/// A symmetric pairwise distance matrix storing only the strict lower
/// triangle, exactly as the SpecHD FPGA kernel keeps it in HBM
/// ("to conserve storage resources, only the lower triangular part of the
/// distance matrix is retained", §III-C).
///
/// Entry `(i, j)` with `i > j` lives at condensed index
/// `i·(i−1)/2 + j`; the diagonal is implicitly zero.
///
/// # Examples
///
/// ```
/// use spechd_cluster::CondensedMatrix;
/// let m = CondensedMatrix::from_fn(3, |i, j| (i + j) as f64);
/// assert_eq!(m.get(2, 1), 3.0);
/// assert_eq!(m.get(1, 2), 3.0); // symmetric access
/// assert_eq!(m.get(1, 1), 0.0); // diagonal
/// ```
#[derive(Clone, PartialEq)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CondensedMatrix {
    /// Creates an all-zero matrix over `n` points.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix needs at least one point");
        Self {
            n,
            // condensed_len guards n·(n−1)/2 against usize overflow.
            data: vec![0.0; spechd_hdc::distance::condensed_len(n)],
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` for every pair `i > j`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(n);
        for i in 1..n {
            for j in 0..i {
                let v = f(i, j);
                m.data[i * (i - 1) / 2 + j] = v;
            }
        }
        m
    }

    /// Wraps an existing condensed vector (length `n·(n−1)/2`, pair
    /// `(i, j)`, `i > j`, at `i·(i−1)/2 + j`).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match `n` or `n == 0`.
    pub fn from_condensed(n: usize, data: Vec<f64>) -> Self {
        assert!(n > 0, "matrix needs at least one point");
        assert_eq!(
            data.len(),
            spechd_hdc::distance::condensed_len(n),
            "condensed length mismatch"
        );
        Self { n, data }
    }

    /// Ingests the 16-bit fixed-point condensed form produced by the
    /// distance kernel (`spechd_hdc::distance::pairwise_condensed`).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match `n` or `n == 0`.
    pub fn from_u16(n: usize, data: &[u16]) -> Self {
        Self::from_condensed(n, data.iter().map(|&d| f64::from(d)).collect())
    }

    /// Builds the matrix directly from a packed hypervector store, running
    /// the tiled XOR+popcount kernel
    /// ([`spechd_hdc::distance::pairwise_condensed_packed`]) over the
    /// contiguous buffer.
    ///
    /// # Panics
    ///
    /// Panics if the pack is empty or its dimensionality exceeds the
    /// 16-bit distance range.
    pub fn from_pack(pack: &spechd_hdc::HvPack) -> Self {
        Self::from_u16(
            pack.len(),
            &spechd_hdc::distance::pairwise_condensed_packed(pack),
        )
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries, `n·(n−1)/2`.
    pub fn condensed_len(&self) -> usize {
        self.data.len()
    }

    /// The raw condensed storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    fn index(i: usize, j: usize) -> usize {
        debug_assert!(i > j);
        i * (i - 1) / 2 + j
    }

    /// Returns the distance between `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Greater => self.data[Self::index(i, j)],
            std::cmp::Ordering::Less => self.data[Self::index(j, i)],
            std::cmp::Ordering::Equal => 0.0,
        }
    }

    /// Sets the distance between `i` and `j` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `i == j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        assert_ne!(i, j, "diagonal is implicitly zero");
        let idx = if i > j {
            Self::index(i, j)
        } else {
            Self::index(j, i)
        };
        self.data[idx] = value;
    }

    /// The minimum off-diagonal entry and its pair `(i, j)` with `i > j`,
    /// or `None` for a single-point matrix.
    pub fn min_pair(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 1..self.n {
            for j in 0..i {
                let d = self.data[Self::index(i, j)];
                if best.map_or(true, |(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        best
    }

    /// Storage footprint if held as 16-bit fixed point, in bytes — the
    /// quantity the paper's memory budgeting uses.
    pub fn bytes_as_u16(&self) -> usize {
        self.data.len() * 2
    }
}

impl fmt::Debug for CondensedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CondensedMatrix {{ n: {}, entries: {} }}",
            self.n,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let m = CondensedMatrix::zeros(5);
        assert_eq!(m.n(), 5);
        assert_eq!(m.condensed_len(), 10);
        assert_eq!(m.get(3, 1), 0.0);
    }

    #[test]
    fn from_fn_and_symmetry() {
        let m = CondensedMatrix::from_fn(4, |i, j| (10 * i + j) as f64);
        assert_eq!(m.get(3, 2), 32.0);
        assert_eq!(m.get(2, 3), 32.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = CondensedMatrix::zeros(4);
        m.set(2, 0, 7.5);
        m.set(1, 3, 2.5); // reversed order
        assert_eq!(m.get(0, 2), 7.5);
        assert_eq!(m.get(3, 1), 2.5);
    }

    #[test]
    fn condensed_index_formula() {
        // n=4: pairs in order (1,0),(2,0),(2,1),(3,0),(3,1),(3,2).
        let m = CondensedMatrix::from_condensed(4, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.get(3, 0), 4.0);
        assert_eq!(m.get(3, 1), 5.0);
        assert_eq!(m.get(3, 2), 6.0);
    }

    #[test]
    fn from_pack_matches_pairwise_hamming() {
        use spechd_hdc::{BinaryHypervector, HvPack};
        let hvs = vec![
            BinaryHypervector::zeros(64),
            BinaryHypervector::ones(64),
            BinaryHypervector::from_fn(64, |i| i < 32),
        ];
        let m = CondensedMatrix::from_pack(&HvPack::from_hypervectors(64, &hvs));
        assert_eq!(m.get(1, 0), 64.0);
        assert_eq!(m.get(2, 0), 32.0);
        assert_eq!(m.get(2, 1), 32.0);
    }

    #[test]
    fn from_u16_conversion() {
        let m = CondensedMatrix::from_u16(3, &[100, 200, 300]);
        assert_eq!(m.get(1, 0), 100.0);
        assert_eq!(m.get(2, 1), 300.0);
        assert_eq!(m.bytes_as_u16(), 6);
    }

    #[test]
    fn min_pair_found() {
        let m = CondensedMatrix::from_condensed(4, vec![9.0, 2.0, 8.0, 7.0, 1.5, 6.0]);
        assert_eq!(m.min_pair(), Some((3, 1, 1.5)));
    }

    #[test]
    fn min_pair_single_point() {
        let m = CondensedMatrix::zeros(1);
        assert!(m.min_pair().is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_condensed_wrong_length() {
        CondensedMatrix::from_condensed(4, vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_diagonal_panics() {
        CondensedMatrix::zeros(3).set(1, 1, 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        CondensedMatrix::zeros(3).get(3, 0);
    }

    #[test]
    fn debug_nonempty() {
        assert!(format!("{:?}", CondensedMatrix::zeros(3)).contains("n: 3"));
    }
}
