//! Dendrograms: merge trees produced by HAC, with threshold cutting.

use crate::ClusterAssignment;

/// One agglomeration step. Node ids follow the scipy convention: ids
/// `0..n` are the original points (leaves); the merge at sorted position
/// `k` creates node `n + k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Id of the first merged node.
    pub left: usize,
    /// Id of the second merged node.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
    /// Number of leaves in the created cluster.
    pub size: usize,
}

/// A full agglomeration history over `n` points, with merges sorted by
/// non-decreasing height.
///
/// # Examples
///
/// ```
/// use spechd_cluster::{CondensedMatrix, Linkage, nn_chain};
/// let m = CondensedMatrix::from_fn(3, |i, j| (i + j) as f64);
/// let d = nn_chain(&m, Linkage::Single).dendrogram;
/// assert_eq!(d.n(), 3);
/// assert_eq!(d.merges().len(), 2);
/// assert_eq!(d.cut(f64::INFINITY).num_clusters(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Builds a dendrogram from raw merge records `(a, b, height)` where
    /// `a` and `b` are *any representative original point* of the two
    /// clusters being merged. Records are sorted by height and relabelled
    /// into scipy-style node ids via union-find.
    ///
    /// For reducible linkages (all of [`crate::Linkage`]) sorting by height
    /// yields a valid agglomeration order, which is how NN-chain output is
    /// canonicalized.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, if the number of records differs from `n - 1`,
    /// or if a record references an out-of-range point.
    pub fn from_raw_merges(n: usize, mut raw: Vec<(usize, usize, f64)>) -> Self {
        assert!(n > 0, "dendrogram needs at least one point");
        assert_eq!(raw.len(), n - 1, "a full agglomeration has n-1 merges");
        raw.sort_by(|a, b| a.2.total_cmp(&b.2));

        let mut parent: Vec<usize> = (0..n).collect();
        let mut node_id: Vec<usize> = (0..n).collect();
        let mut size: Vec<usize> = vec![1; n];

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        let mut merges = Vec::with_capacity(n - 1);
        for (k, (a, b, height)) in raw.into_iter().enumerate() {
            assert!(a < n && b < n, "merge record references point out of range");
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            assert_ne!(ra, rb, "merge record joins points already in one cluster");
            let new_size = size[ra] + size[rb];
            let (left, right) = (node_id[ra].min(node_id[rb]), node_id[ra].max(node_id[rb]));
            merges.push(Merge {
                left,
                right,
                height,
                size: new_size,
            });
            // Union: attach rb under ra, reuse ra's slot for the new node.
            parent[rb] = ra;
            size[ra] = new_size;
            node_id[ra] = n + k;
        }
        Self { n, merges }
    }

    /// Number of original points.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The merges, sorted by non-decreasing height.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Heights of all merges in order.
    pub fn heights(&self) -> Vec<f64> {
        self.merges.iter().map(|m| m.height).collect()
    }

    /// Whether merge heights are non-decreasing (guaranteed by
    /// construction; exposed for tests and invariant checks).
    pub fn is_monotonic(&self) -> bool {
        self.merges.windows(2).all(|w| w[0].height <= w[1].height)
    }

    /// Cuts the tree at `threshold`: every merge with
    /// `height <= threshold` is applied, and the resulting connected
    /// components become flat clusters.
    pub fn cut(&self, threshold: f64) -> ClusterAssignment {
        let mut parent: Vec<usize> = (0..self.n + self.merges.len()).collect();

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        for (k, m) in self.merges.iter().enumerate() {
            if m.height <= threshold {
                let node = self.n + k;
                let rl = find(&mut parent, m.left);
                let rr = find(&mut parent, m.right);
                parent[rl] = node;
                parent[rr] = node;
            }
        }
        let roots: Vec<usize> = (0..self.n).map(|i| find(&mut parent, i)).collect();
        ClusterAssignment::from_raw_labels(&roots)
    }

    /// Cuts the tree into exactly `k` clusters (the `k-1` highest merges
    /// are left unapplied). `k` is clamped to `[1, n]`.
    pub fn cut_into(&self, k: usize) -> ClusterAssignment {
        let k = k.clamp(1, self.n);
        let applied = self.n - k; // number of merges to apply
        if applied == 0 {
            return ClusterAssignment::from_raw_labels(&(0..self.n).collect::<Vec<_>>());
        }
        let threshold = self.merges[applied - 1].height;
        // Heights can tie; fall back to applying exactly `applied` merges.
        let mut parent: Vec<usize> = (0..self.n + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (kidx, m) in self.merges.iter().take(applied).enumerate() {
            let node = self.n + kidx;
            let rl = find(&mut parent, m.left);
            let rr = find(&mut parent, m.right);
            parent[rl] = node;
            parent[rr] = node;
        }
        let _ = threshold;
        let roots: Vec<usize> = (0..self.n).map(|i| find(&mut parent, i)).collect();
        ClusterAssignment::from_raw_labels(&roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0-1 at h=1, then {0,1}-2 at h=2, then {0,1,2}-3 at h=5.
    fn sample() -> Dendrogram {
        Dendrogram::from_raw_merges(4, vec![(2, 0, 2.0), (0, 1, 1.0), (3, 1, 5.0)])
    }

    #[test]
    fn sorting_and_node_ids() {
        let d = sample();
        assert!(d.is_monotonic());
        let m = d.merges();
        assert_eq!(m[0].height, 1.0);
        assert_eq!((m[0].left, m[0].right), (0, 1));
        assert_eq!(m[0].size, 2);
        // Second merge joins node 4 (={0,1}) with leaf 2.
        assert_eq!((m[1].left, m[1].right), (2, 4));
        assert_eq!(m[1].size, 3);
        // Third joins node 5 with leaf 3.
        assert_eq!((m[2].left, m[2].right), (3, 5));
        assert_eq!(m[2].size, 4);
    }

    #[test]
    fn cut_thresholds() {
        let d = sample();
        assert_eq!(d.cut(0.5).num_clusters(), 4);
        assert_eq!(d.cut(1.0).num_clusters(), 3);
        assert_eq!(d.cut(2.0).num_clusters(), 2);
        assert_eq!(d.cut(10.0).num_clusters(), 1);
    }

    #[test]
    fn cut_groups_correct_members() {
        let d = sample();
        let a = d.cut(2.5);
        let l = a.labels();
        assert_eq!(l[0], l[1]);
        assert_eq!(l[0], l[2]);
        assert_ne!(l[0], l[3]);
    }

    #[test]
    fn cut_into_counts() {
        let d = sample();
        for k in 1..=4 {
            assert_eq!(d.cut_into(k).num_clusters(), k, "k={k}");
        }
        // Clamping.
        assert_eq!(d.cut_into(0).num_clusters(), 1);
        assert_eq!(d.cut_into(99).num_clusters(), 4);
    }

    #[test]
    fn singleton_dendrogram() {
        let d = Dendrogram::from_raw_merges(1, vec![]);
        assert_eq!(d.cut(1.0).num_clusters(), 1);
        assert!(d.is_monotonic());
    }

    #[test]
    #[should_panic(expected = "n-1 merges")]
    fn wrong_merge_count_panics() {
        Dendrogram::from_raw_merges(3, vec![(0, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "already in one cluster")]
    fn duplicate_merge_panics() {
        Dendrogram::from_raw_merges(3, vec![(0, 1, 1.0), (1, 0, 2.0)]);
    }

    #[test]
    fn heights_accessor() {
        assert_eq!(sample().heights(), vec![1.0, 2.0, 5.0]);
    }
}
