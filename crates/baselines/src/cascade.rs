//! The greedy-cascade clustering family: spectra-cluster (Griss et al.)
//! and MSCluster (Frank et al.) both run iterative rounds that compare
//! spectra against cluster *representatives* (a running consensus vector)
//! and merge when similarity clears a round-specific threshold that
//! loosens over rounds.

use crate::vectorize::BinnedSpectrum;
use crate::{expand_to_full, ClusteringTool};
use spechd_cluster::ClusterAssignment;
use spechd_ms::SpectrumDataset;
use spechd_preprocess::{PrecursorBucketer, PreprocessConfig, PreprocessPipeline};

/// A configurable greedy cascade clusterer; use
/// [`GreedyCascade::spectra_cluster`] and [`GreedyCascade::mscluster`]
/// for the two published parameterizations.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyCascade {
    name: &'static str,
    /// Per-round cosine similarity thresholds, strictest first.
    pub round_thresholds: Vec<f64>,
    /// Fragment binning width in Thomson.
    pub bin_width: f64,
    /// Precursor bucketing resolution in Dalton.
    pub resolution: f64,
}

impl GreedyCascade {
    /// spectra-cluster's parameterization: four rounds from 0.99 to 0.85.
    pub fn spectra_cluster() -> Self {
        Self {
            name: "spectra-cluster",
            round_thresholds: vec![0.99, 0.95, 0.90, 0.85],
            bin_width: 1.0005,
            resolution: 1.0,
        }
    }

    /// MSCluster's parameterization: three faster, looser rounds.
    pub fn mscluster() -> Self {
        Self {
            name: "MSCluster",
            round_thresholds: vec![0.95, 0.88, 0.80],
            bin_width: 1.0005,
            resolution: 1.0,
        }
    }
}

/// A cluster under construction: member indices and the (unnormalized)
/// sum of member vectors serving as the representative consensus.
struct Draft {
    members: Vec<usize>,
    sum: std::collections::BTreeMap<u32, f64>,
}

impl Draft {
    fn new(member: usize, v: &BinnedSpectrum) -> Self {
        let mut sum = std::collections::BTreeMap::new();
        for &(bin, w) in v.entries() {
            sum.insert(bin, f64::from(w));
        }
        Self {
            members: vec![member],
            sum,
        }
    }

    /// Cosine of a spectrum against the representative.
    fn cosine(&self, v: &BinnedSpectrum) -> f64 {
        let norm: f64 = self.sum.values().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return 0.0;
        }
        let mut dot = 0.0;
        for &(bin, w) in v.entries() {
            if let Some(&s) = self.sum.get(&bin) {
                dot += s * f64::from(w);
            }
        }
        dot / norm
    }

    fn absorb(&mut self, member: usize, v: &BinnedSpectrum) {
        self.members.push(member);
        for &(bin, w) in v.entries() {
            *self.sum.entry(bin).or_insert(0.0) += f64::from(w);
        }
    }
}

impl ClusteringTool for GreedyCascade {
    fn name(&self) -> &'static str {
        self.name
    }

    fn cluster(&self, dataset: &SpectrumDataset) -> ClusterAssignment {
        let pre = PreprocessPipeline::new(PreprocessConfig::default()).run(dataset);
        let vectors: Vec<BinnedSpectrum> = pre
            .dataset
            .spectra()
            .iter()
            .map(|s| BinnedSpectrum::from_spectrum(s, self.bin_width))
            .collect();
        let buckets = PrecursorBucketer::new(self.resolution).bucketize(pre.dataset.spectra());

        let mut raw = vec![0usize; pre.dataset.len()];
        let mut next = 0usize;
        for bucket in &buckets {
            // One draft per spectrum initially; rounds merge drafts greedily.
            let mut drafts: Vec<Draft> = bucket
                .members
                .iter()
                .map(|&m| Draft::new(m, &vectors[m]))
                .collect();
            for &threshold in &self.round_thresholds {
                let mut merged: Vec<Draft> = Vec::with_capacity(drafts.len());
                for draft in drafts {
                    // Try to absorb this draft's members into an existing
                    // merged cluster via its first member's vector.
                    let probe = &vectors[draft.members[0]];
                    let target = merged
                        .iter_mut()
                        .map(|c| (c.cosine(probe), c))
                        .filter(|(sim, _)| *sim >= threshold)
                        .max_by(|a, b| a.0.total_cmp(&b.0));
                    match target {
                        Some((_, cluster)) => {
                            for &m in &draft.members {
                                cluster.absorb(m, &vectors[m]);
                            }
                        }
                        None => merged.push(draft),
                    }
                }
                drafts = merged;
            }
            for draft in &drafts {
                for &m in &draft.members {
                    raw[m] = next;
                }
                next += 1;
            }
        }
        let local = ClusterAssignment::from_raw_labels(&raw);
        expand_to_full(&local, &pre.kept, dataset.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_metrics::ClusteringEval;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn dataset(seed: u64) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 250,
            num_peptides: 50,
            seed,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn both_parameterizations_work() {
        let ds = dataset(71);
        for tool in [GreedyCascade::spectra_cluster(), GreedyCascade::mscluster()] {
            let a = tool.cluster(&ds);
            let eval = ClusteringEval::compute(a.labels(), ds.labels());
            assert!(
                eval.clustered_ratio > 0.05,
                "{}: {:.3}",
                tool.name(),
                eval.clustered_ratio
            );
            assert!(
                eval.incorrect_ratio < 0.15,
                "{}: {:.3}",
                tool.name(),
                eval.incorrect_ratio
            );
        }
    }

    #[test]
    fn looser_rounds_cluster_more() {
        let ds = dataset(72);
        let strict = GreedyCascade {
            name: "strict",
            round_thresholds: vec![0.999],
            ..GreedyCascade::spectra_cluster()
        };
        let lax = GreedyCascade {
            name: "lax",
            round_thresholds: vec![0.99, 0.9, 0.7],
            ..GreedyCascade::spectra_cluster()
        };
        assert!(strict.cluster(&ds).clustered_ratio() <= lax.cluster(&ds).clustered_ratio() + 1e-9);
    }

    #[test]
    fn deterministic() {
        let ds = dataset(73);
        let t = GreedyCascade::mscluster();
        assert_eq!(t.cluster(&ds), t.cluster(&ds));
    }

    #[test]
    fn names_distinct() {
        assert_ne!(
            GreedyCascade::spectra_cluster().name(),
            GreedyCascade::mscluster().name()
        );
    }
}
