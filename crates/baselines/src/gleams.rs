//! GLEAMS (Bittremieux et al., Nat. Methods 2022): "a learned embedding
//! for efficient joint analysis of millions of mass spectra" — a
//! supervised DNN embeds spectra into 32 dimensions, followed by
//! clustering in the embedded space.
//!
//! **Substitution (DESIGN.md §2):** the trained DNN is unavailable, so the
//! embedding is a seeded Johnson–Lindenstrauss random projection of the
//! binned spectrum to the same 32 dimensions. JL projections preserve the
//! relative distances the downstream HAC consumes, reproducing GLEAMS'
//! quality behaviour (strong clustered ratio at matched ICR) without the
//! training corpus; its *runtime* cost (the expensive per-spectrum
//! inference) is modelled separately in [`crate::perf`].

use crate::vectorize::{euclidean, BinnedSpectrum};
use crate::{expand_to_full, ClusteringTool};
use spechd_cluster::{nn_chain, ClusterAssignment, CondensedMatrix, Linkage};
use spechd_ms::SpectrumDataset;
use spechd_preprocess::{PrecursorBucketer, PreprocessConfig, PreprocessPipeline};

/// The GLEAMS clustering tool (embedding + average-linkage HAC).
#[derive(Debug, Clone, PartialEq)]
pub struct Gleams {
    /// Embedding dimensionality (GLEAMS: 32).
    pub embed_dims: usize,
    /// HAC cut threshold in embedded Euclidean distance.
    pub threshold: f64,
    /// Fragment binning width in Thomson.
    pub bin_width: f64,
    /// Precursor bucketing resolution in Dalton.
    pub resolution: f64,
    /// Projection seed (stands in for trained weights).
    pub seed: u64,
}

impl Default for Gleams {
    fn default() -> Self {
        Self {
            embed_dims: 32,
            threshold: 0.62,
            bin_width: 1.0005,
            resolution: 1.0,
            seed: 0x61EA_A450_0000_1234,
        }
    }
}

impl ClusteringTool for Gleams {
    fn name(&self) -> &'static str {
        "GLEAMS"
    }

    fn cluster(&self, dataset: &SpectrumDataset) -> ClusterAssignment {
        let pre = PreprocessPipeline::new(PreprocessConfig::default()).run(dataset);
        let embedded: Vec<Vec<f32>> = pre
            .dataset
            .spectra()
            .iter()
            .map(|s| {
                BinnedSpectrum::from_spectrum(s, self.bin_width).project(self.embed_dims, self.seed)
            })
            .collect();
        // Normalize embeddings to unit norm (GLEAMS trains with a
        // contrastive loss that effectively does the same).
        let embedded: Vec<Vec<f32>> = embedded
            .into_iter()
            .map(|v| {
                let norm: f64 = v
                    .iter()
                    .map(|&x| f64::from(x) * f64::from(x))
                    .sum::<f64>()
                    .sqrt();
                if norm > 0.0 {
                    v.into_iter()
                        .map(|x| (f64::from(x) / norm) as f32)
                        .collect()
                } else {
                    v
                }
            })
            .collect();
        let buckets = PrecursorBucketer::new(self.resolution).bucketize(pre.dataset.spectra());

        let mut raw = vec![0usize; pre.dataset.len()];
        let mut next = 0usize;
        for bucket in &buckets {
            if bucket.len() == 1 {
                raw[bucket.members[0]] = next;
                next += 1;
                continue;
            }
            let n = bucket.len();
            let matrix = CondensedMatrix::from_fn(n, |i, j| {
                euclidean(&embedded[bucket.members[i]], &embedded[bucket.members[j]])
            });
            let cut = nn_chain(&matrix, Linkage::Average)
                .dendrogram
                .cut(self.threshold);
            for (&member, &label) in bucket.members.iter().zip(cut.labels()) {
                raw[member] = next + label;
            }
            next += cut.num_clusters();
        }
        let local = ClusterAssignment::from_raw_labels(&raw);
        expand_to_full(&local, &pre.kept, dataset.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_metrics::ClusteringEval;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn dataset(seed: u64) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 250,
            num_peptides: 50,
            seed,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn strong_clustered_ratio_at_low_icr() {
        // Fig. 10: "GLEAMS surpasses Spec-HD in clustered spectra ratio".
        let ds = dataset(61);
        let a = Gleams::default().cluster(&ds);
        let eval = ClusteringEval::compute(a.labels(), ds.labels());
        assert!(eval.clustered_ratio > 0.2, "{:.3}", eval.clustered_ratio);
        assert!(eval.incorrect_ratio < 0.12, "{:.3}", eval.incorrect_ratio);
    }

    #[test]
    fn embedding_distance_orders_replicates_first() {
        let ds = dataset(62);
        let tool = Gleams::default();
        let pre = PreprocessPipeline::new(PreprocessConfig::default()).run(&ds);
        // Two spectra of the same label should embed closer than two of
        // different labels, on average.
        let emb: Vec<Vec<f32>> = pre
            .dataset
            .spectra()
            .iter()
            .map(|s| BinnedSpectrum::from_spectrum(s, tool.bin_width).project(32, tool.seed))
            .collect();
        let labels = pre.dataset.labels();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..emb.len().min(60) {
            for j in (i + 1)..emb.len().min(60) {
                if let (Some(a), Some(b)) = (labels[i], labels[j]) {
                    let d = euclidean(&emb[i], &emb[j]);
                    if a == b {
                        same.push(d);
                    } else {
                        diff.push(d);
                    }
                }
            }
        }
        if !same.is_empty() && !diff.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(mean(&same) < mean(&diff));
        }
    }

    #[test]
    fn threshold_monotone() {
        let ds = dataset(63);
        let strict = Gleams {
            threshold: 0.1,
            ..Default::default()
        }
        .cluster(&ds);
        let lax = Gleams {
            threshold: 1.2,
            ..Default::default()
        }
        .cluster(&ds);
        assert!(strict.clustered_ratio() <= lax.clustered_ratio() + 1e-9);
    }

    #[test]
    fn deterministic() {
        let ds = dataset(64);
        assert_eq!(
            Gleams::default().cluster(&ds),
            Gleams::default().cluster(&ds)
        );
    }
}
