//! falcon (Bittremieux et al., Rapid Commun. Mass Spectrom. 2021):
//! binned spectrum vectors, approximate nearest-neighbor candidate
//! retrieval within precursor tolerance, and density-based merging.
//!
//! The reimplementation keeps falcon's quality-relevant structure —
//! cosine distance over binned vectors and eps-radius transitive joining
//! (its DBSCAN step) — with exact neighbor search inside each precursor
//! bucket standing in for the ANN index (exactness only *improves*
//! fidelity at these bucket sizes).

use crate::vectorize::BinnedSpectrum;
use crate::{expand_to_full, ClusteringTool};
use spechd_cluster::{dbscan, ClusterAssignment, CondensedMatrix, DbscanParams};
use spechd_ms::SpectrumDataset;
use spechd_preprocess::{PrecursorBucketer, PreprocessConfig, PreprocessPipeline};

/// The falcon clustering tool.
#[derive(Debug, Clone, PartialEq)]
pub struct Falcon {
    /// Cosine-distance radius for neighbor joining (falcon's `eps`).
    pub eps: f64,
    /// Minimum neighborhood size for a core spectrum.
    pub min_pts: usize,
    /// Fragment binning width in Thomson.
    pub bin_width: f64,
    /// Precursor bucketing resolution in Dalton.
    pub resolution: f64,
}

impl Default for Falcon {
    fn default() -> Self {
        Self {
            eps: 0.25,
            min_pts: 2,
            bin_width: 1.0005,
            resolution: 1.0,
        }
    }
}

impl ClusteringTool for Falcon {
    fn name(&self) -> &'static str {
        "Falcon"
    }

    fn cluster(&self, dataset: &SpectrumDataset) -> ClusterAssignment {
        let pre = PreprocessPipeline::new(PreprocessConfig::default()).run(dataset);
        let vectors: Vec<BinnedSpectrum> = pre
            .dataset
            .spectra()
            .iter()
            .map(|s| BinnedSpectrum::from_spectrum(s, self.bin_width))
            .collect();
        let buckets = PrecursorBucketer::new(self.resolution).bucketize(pre.dataset.spectra());

        let mut raw = vec![0usize; pre.dataset.len()];
        let mut next = 0usize;
        for bucket in &buckets {
            if bucket.len() == 1 {
                raw[bucket.members[0]] = next;
                next += 1;
                continue;
            }
            let n = bucket.len();
            let matrix = CondensedMatrix::from_fn(n, |i, j| {
                vectors[bucket.members[i]].cosine_distance(&vectors[bucket.members[j]])
            });
            let result = dbscan(
                &matrix,
                DbscanParams {
                    eps: self.eps,
                    min_pts: self.min_pts,
                },
            );
            let assignment = result.to_assignment();
            for (&member, &label) in bucket.members.iter().zip(assignment.labels()) {
                raw[member] = next + label;
            }
            next += assignment.num_clusters();
        }
        let local = ClusterAssignment::from_raw_labels(&raw);
        expand_to_full(&local, &pre.kept, dataset.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_metrics::ClusteringEval;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn dataset(seed: u64) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 250,
            num_peptides: 50,
            seed,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn clusters_replicates_with_low_icr() {
        let ds = dataset(31);
        let a = Falcon::default().cluster(&ds);
        let eval = ClusteringEval::compute(a.labels(), ds.labels());
        assert!(eval.clustered_ratio > 0.15, "{:.3}", eval.clustered_ratio);
        assert!(eval.incorrect_ratio < 0.12, "{:.3}", eval.incorrect_ratio);
    }

    #[test]
    fn eps_controls_aggressiveness() {
        let ds = dataset(32);
        let tight = Falcon {
            eps: 0.05,
            ..Default::default()
        }
        .cluster(&ds);
        let loose = Falcon {
            eps: 0.5,
            ..Default::default()
        }
        .cluster(&ds);
        assert!(tight.clustered_ratio() <= loose.clustered_ratio() + 1e-9);
    }

    #[test]
    fn deterministic() {
        let ds = dataset(33);
        assert_eq!(
            Falcon::default().cluster(&ds),
            Falcon::default().cluster(&ds)
        );
    }
}
