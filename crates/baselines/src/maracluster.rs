//! MaRaCluster (The & Käll, J. Proteome Res. 2016): "a fragment rarity
//! metric for clustering fragment spectra" — pairwise p-values from shared
//! *rare* peaks, then hierarchical clustering with a conservative cut.
//!
//! The reimplementation scores a pair by the sum of `−ln(frequency)` over
//! shared fragment bins, where the frequency is measured within the
//! precursor bucket (a peak shared by everything carries no evidence),
//! and feeds `exp(−score)` as the distance into complete-linkage HAC.

use crate::vectorize::BinnedSpectrum;
use crate::{expand_to_full, ClusteringTool};
use spechd_cluster::{nn_chain, ClusterAssignment, CondensedMatrix, Linkage};
use spechd_ms::SpectrumDataset;
use spechd_preprocess::{PrecursorBucketer, PreprocessConfig, PreprocessPipeline};

/// The MaRaCluster clustering tool.
#[derive(Debug, Clone, PartialEq)]
pub struct MaRaCluster {
    /// Distance cut threshold in `exp(−score)` space (lower = stricter;
    /// MaRaCluster is the conservative tool of the comparison).
    pub threshold: f64,
    /// Fragment binning width in Thomson.
    pub bin_width: f64,
    /// Precursor bucketing resolution in Dalton.
    pub resolution: f64,
}

impl Default for MaRaCluster {
    fn default() -> Self {
        Self {
            threshold: 0.02,
            bin_width: 1.0005,
            resolution: 1.0,
        }
    }
}

impl MaRaCluster {
    /// Rarity-weighted shared-peak score of a pair given per-bin document
    /// frequencies within the bucket.
    fn pair_score(
        a: &BinnedSpectrum,
        b: &BinnedSpectrum,
        bin_freq: &std::collections::HashMap<u32, usize>,
        bucket_size: usize,
    ) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let ea = a.entries();
        let eb = b.entries();
        let mut score = 0.0;
        while i < ea.len() && j < eb.len() {
            match ea[i].0.cmp(&eb[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let df = *bin_freq.get(&ea[i].0).unwrap_or(&1);
                    let freq = df as f64 / bucket_size as f64;
                    score += -(freq.min(1.0)).ln();
                    i += 1;
                    j += 1;
                }
            }
        }
        score
    }
}

impl ClusteringTool for MaRaCluster {
    fn name(&self) -> &'static str {
        "MaRaCluster"
    }

    fn cluster(&self, dataset: &SpectrumDataset) -> ClusterAssignment {
        let pre = PreprocessPipeline::new(PreprocessConfig::default()).run(dataset);
        let vectors: Vec<BinnedSpectrum> = pre
            .dataset
            .spectra()
            .iter()
            .map(|s| BinnedSpectrum::from_spectrum(s, self.bin_width))
            .collect();
        let buckets = PrecursorBucketer::new(self.resolution).bucketize(pre.dataset.spectra());

        let mut raw = vec![0usize; pre.dataset.len()];
        let mut next = 0usize;
        for bucket in &buckets {
            if bucket.len() == 1 {
                raw[bucket.members[0]] = next;
                next += 1;
                continue;
            }
            // Document frequency of every bin within this bucket.
            let mut bin_freq: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for &m in &bucket.members {
                for &(bin, _) in vectors[m].entries() {
                    *bin_freq.entry(bin).or_insert(0) += 1;
                }
            }
            let n = bucket.len();
            let matrix = CondensedMatrix::from_fn(n, |i, j| {
                let score = Self::pair_score(
                    &vectors[bucket.members[i]],
                    &vectors[bucket.members[j]],
                    &bin_freq,
                    n,
                );
                (-score).exp() // strong evidence -> tiny distance
            });
            let cut = nn_chain(&matrix, Linkage::Complete)
                .dendrogram
                .cut(self.threshold);
            for (&member, &label) in bucket.members.iter().zip(cut.labels()) {
                raw[member] = next + label;
            }
            next += cut.num_clusters();
        }
        let local = ClusterAssignment::from_raw_labels(&raw);
        expand_to_full(&local, &pre.kept, dataset.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_metrics::ClusteringEval;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn dataset(seed: u64) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 250,
            num_peptides: 50,
            seed,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn conservative_but_accurate() {
        let ds = dataset(51);
        let a = MaRaCluster::default().cluster(&ds);
        let eval = ClusteringEval::compute(a.labels(), ds.labels());
        assert!(eval.clustered_ratio > 0.1, "{:.3}", eval.clustered_ratio);
        assert!(
            eval.incorrect_ratio < 0.08,
            "rarity metric keeps ICR low: {:.3}",
            eval.incorrect_ratio
        );
    }

    #[test]
    fn threshold_monotone() {
        let ds = dataset(52);
        let strict = MaRaCluster {
            threshold: 0.001,
            ..Default::default()
        }
        .cluster(&ds);
        let lax = MaRaCluster {
            threshold: 0.5,
            ..Default::default()
        }
        .cluster(&ds);
        assert!(strict.clustered_ratio() <= lax.clustered_ratio() + 1e-9);
    }

    #[test]
    fn deterministic() {
        let ds = dataset(53);
        assert_eq!(
            MaRaCluster::default().cluster(&ds),
            MaRaCluster::default().cluster(&ds)
        );
    }
}
