//! msCRUSH (Wang et al., J. Proteome Res. 2019): locality-sensitive
//! hashing "to avoid unnecessary pairwise comparisons between spectra",
//! followed by greedy merging of same-signature candidates.
//!
//! The reimplementation uses random-hyperplane LSH over binned vectors
//! (cosine LSH, the family msCRUSH's iterative hashing approximates) with
//! several independent tables, then union-joins candidate pairs whose true
//! cosine similarity clears the threshold.

use crate::vectorize::BinnedSpectrum;
use crate::{expand_to_full, ClusteringTool};
use spechd_cluster::ClusterAssignment;
use spechd_ms::SpectrumDataset;
use spechd_preprocess::{PrecursorBucketer, PreprocessConfig, PreprocessPipeline};

/// The msCRUSH clustering tool.
#[derive(Debug, Clone, PartialEq)]
pub struct MsCrush {
    /// Cosine similarity required to merge a candidate pair.
    pub min_similarity: f64,
    /// LSH signature length in bits.
    pub hash_bits: usize,
    /// Number of independent hash tables (iterations in msCRUSH terms).
    pub tables: usize,
    /// Fragment binning width in Thomson.
    pub bin_width: f64,
    /// Precursor bucketing resolution in Dalton.
    pub resolution: f64,
    /// LSH seed.
    pub seed: u64,
}

impl Default for MsCrush {
    fn default() -> Self {
        Self {
            min_similarity: 0.75,
            hash_bits: 10,
            tables: 6,
            bin_width: 1.0005,
            resolution: 1.0,
            seed: 0xC7_5118,
        }
    }
}

impl MsCrush {
    /// LSH signature: sign pattern of `hash_bits` random projections.
    fn signature(&self, v: &BinnedSpectrum, table: usize) -> u64 {
        let proj = v.project(
            self.hash_bits,
            self.seed.wrapping_add(table as u64 * 0x9E37),
        );
        let mut sig = 0u64;
        for (bit, &x) in proj.iter().enumerate() {
            if x > 0.0 {
                sig |= 1 << bit;
            }
        }
        sig
    }
}

impl ClusteringTool for MsCrush {
    fn name(&self) -> &'static str {
        "msCRUSH"
    }

    fn cluster(&self, dataset: &SpectrumDataset) -> ClusterAssignment {
        let pre = PreprocessPipeline::new(PreprocessConfig::default()).run(dataset);
        let vectors: Vec<BinnedSpectrum> = pre
            .dataset
            .spectra()
            .iter()
            .map(|s| BinnedSpectrum::from_spectrum(s, self.bin_width))
            .collect();
        let buckets = PrecursorBucketer::new(self.resolution).bucketize(pre.dataset.spectra());

        // Union-find over kept spectra.
        let n = pre.dataset.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        for bucket in &buckets {
            if bucket.len() < 2 {
                continue;
            }
            for table in 0..self.tables {
                // Group members by LSH signature; verify within groups.
                let mut groups: std::collections::HashMap<u64, Vec<usize>> =
                    std::collections::HashMap::new();
                for &m in &bucket.members {
                    groups
                        .entry(self.signature(&vectors[m], table))
                        .or_default()
                        .push(m);
                }
                for members in groups.values() {
                    for (idx, &a) in members.iter().enumerate() {
                        for &b in &members[idx + 1..] {
                            let ra = find(&mut parent, a);
                            let rb = find(&mut parent, b);
                            if ra != rb && vectors[a].cosine(&vectors[b]) >= self.min_similarity {
                                parent[rb] = ra;
                            }
                        }
                    }
                }
            }
        }
        let roots: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
        let local = ClusterAssignment::from_raw_labels(&roots);
        expand_to_full(&local, &pre.kept, dataset.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_metrics::ClusteringEval;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn dataset(seed: u64) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 250,
            num_peptides: 50,
            seed,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn produces_low_icr_clusters() {
        let ds = dataset(41);
        let a = MsCrush::default().cluster(&ds);
        let eval = ClusteringEval::compute(a.labels(), ds.labels());
        assert!(eval.clustered_ratio > 0.1, "{:.3}", eval.clustered_ratio);
        assert!(eval.incorrect_ratio < 0.1, "{:.3}", eval.incorrect_ratio);
    }

    #[test]
    fn more_tables_cluster_at_least_as_much() {
        let ds = dataset(42);
        let few = MsCrush {
            tables: 1,
            ..Default::default()
        }
        .cluster(&ds);
        let many = MsCrush {
            tables: 10,
            ..Default::default()
        }
        .cluster(&ds);
        assert!(many.clustered_ratio() >= few.clustered_ratio() - 1e-9);
    }

    #[test]
    fn similarity_threshold_monotone() {
        let ds = dataset(43);
        let strict = MsCrush {
            min_similarity: 0.95,
            ..Default::default()
        }
        .cluster(&ds);
        let lax = MsCrush {
            min_similarity: 0.4,
            ..Default::default()
        }
        .cluster(&ds);
        assert!(strict.clustered_ratio() <= lax.clustered_ratio() + 1e-9);
    }

    #[test]
    fn deterministic() {
        let ds = dataset(44);
        assert_eq!(
            MsCrush::default().cluster(&ds),
            MsCrush::default().cluster(&ds)
        );
    }
}
