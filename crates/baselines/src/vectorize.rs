//! Shared spectrum vectorization for the comparator tools.
//!
//! Falcon, msCRUSH, GLEAMS and the cascade tools all start from the same
//! primitive: the spectrum as a sparse binned intensity vector with
//! square-root scaling and unit norm.

use spechd_ms::Spectrum;

/// A sparse binned spectrum vector: sorted `(bin, weight)` pairs with
/// unit Euclidean norm (all-zero spectra stay empty).
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedSpectrum {
    entries: Vec<(u32, f32)>,
}

impl BinnedSpectrum {
    /// Bins a spectrum with the given m/z bin width, sqrt-scaling
    /// intensities and normalizing to unit length.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not positive.
    pub fn from_spectrum(spectrum: &Spectrum, bin_width: f64) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        let mut map: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for p in spectrum.peaks() {
            let bin = (p.mz / bin_width) as u32;
            *map.entry(bin).or_insert(0.0) += f64::from(p.intensity).max(0.0).sqrt();
        }
        let norm: f64 = map.values().map(|v| v * v).sum::<f64>().sqrt();
        let entries = if norm > 0.0 {
            map.into_iter()
                .map(|(b, v)| (b, (v / norm) as f32))
                .collect()
        } else {
            Vec::new()
        };
        Self { entries }
    }

    /// The sorted sparse entries.
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Number of non-zero bins.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Cosine similarity with another binned spectrum (0 for empty ones).
    pub fn cosine(&self, other: &Self) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut dot = 0.0f64;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += f64::from(self.entries[i].1) * f64::from(other.entries[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        dot
    }

    /// Cosine distance `1 − cosine` (clamped to `[0, 1]`).
    pub fn cosine_distance(&self, other: &Self) -> f64 {
        (1.0 - self.cosine(other)).clamp(0.0, 1.0)
    }

    /// Dense random projection onto `dims` dimensions using a seeded
    /// Rademacher (±1) matrix generated per bin on the fly — the
    /// Johnson–Lindenstrauss transform GLEAMS' learned embedding is
    /// substituted with, and the hyperplane generator msCRUSH's LSH uses.
    pub fn project(&self, dims: usize, seed: u64) -> Vec<f32> {
        let mut out = vec![0.0f32; dims];
        for &(bin, weight) in &self.entries {
            // One deterministic SplitMix stream per (bin, seed); each draw
            // yields 64 sign bits.
            let mut rng =
                spechd_rng::SplitMix64::new(seed ^ (u64::from(bin) << 20 | u64::from(bin)));
            let mut bits = 0u64;
            let mut have = 0usize;
            for slot in out.iter_mut() {
                if have == 0 {
                    bits = spechd_rng::Rng::next_u64(&mut rng);
                    have = 64;
                }
                let sign = if bits & 1 == 1 { 1.0 } else { -1.0 };
                bits >>= 1;
                have -= 1;
                *slot += weight * sign;
            }
        }
        out
    }
}

/// Euclidean distance between dense vectors.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::{Peak, Precursor};

    fn spectrum(peaks: &[(f64, f32)]) -> Spectrum {
        Spectrum::new(
            "t",
            Precursor::new(500.0, 2).unwrap(),
            peaks.iter().map(|&(mz, it)| Peak::new(mz, it)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn unit_norm() {
        let b = BinnedSpectrum::from_spectrum(&spectrum(&[(100.0, 4.0), (200.0, 9.0)]), 1.0);
        let norm: f64 = b
            .entries()
            .iter()
            .map(|&(_, v)| f64::from(v) * f64::from(v))
            .sum();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn self_cosine_is_one() {
        let b = BinnedSpectrum::from_spectrum(&spectrum(&[(100.0, 4.0), (205.3, 9.0)]), 1.0);
        assert!((b.cosine(&b) - 1.0).abs() < 1e-6);
        assert!(b.cosine_distance(&b) < 1e-6);
    }

    #[test]
    fn disjoint_spectra_orthogonal() {
        let a = BinnedSpectrum::from_spectrum(&spectrum(&[(100.0, 1.0)]), 1.0);
        let b = BinnedSpectrum::from_spectrum(&spectrum(&[(500.0, 1.0)]), 1.0);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine_distance(&b), 1.0);
    }

    #[test]
    fn nearby_peaks_fall_in_one_bin() {
        let a = BinnedSpectrum::from_spectrum(&spectrum(&[(100.01, 1.0)]), 1.0);
        let b = BinnedSpectrum::from_spectrum(&spectrum(&[(100.72, 1.0)]), 1.0);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6, "same 1-Da bin");
    }

    #[test]
    fn empty_spectrum() {
        let e = BinnedSpectrum::from_spectrum(&spectrum(&[]), 1.0);
        assert_eq!(e.nnz(), 0);
        let b = BinnedSpectrum::from_spectrum(&spectrum(&[(100.0, 1.0)]), 1.0);
        assert_eq!(e.cosine(&b), 0.0);
    }

    #[test]
    fn projection_deterministic_and_distance_preserving() {
        let a = BinnedSpectrum::from_spectrum(
            &spectrum(&[(100.0, 5.0), (250.0, 3.0), (700.0, 8.0)]),
            1.0,
        );
        let b = BinnedSpectrum::from_spectrum(
            &spectrum(&[(100.0, 5.0), (250.0, 3.0), (700.0, 7.0)]),
            1.0,
        );
        let c = BinnedSpectrum::from_spectrum(
            &spectrum(&[(333.0, 5.0), (454.0, 3.0), (888.0, 8.0)]),
            1.0,
        );
        let pa = a.project(32, 9);
        let pa2 = a.project(32, 9);
        assert_eq!(pa, pa2, "deterministic");
        let pb = b.project(32, 9);
        let pc = c.project(32, 9);
        assert!(
            euclidean(&pa, &pb) < euclidean(&pa, &pc),
            "projection must preserve relative distances"
        );
    }

    #[test]
    fn projection_seed_changes_embedding() {
        let a = BinnedSpectrum::from_spectrum(&spectrum(&[(100.0, 5.0)]), 1.0);
        assert_ne!(a.project(16, 1), a.project(16, 2));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn euclidean_len_mismatch() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }
}
