//! HyperSpec (Xu et al., J. Proteome Res. 2023): HDC encoding on GPU with
//! two clustering flavours — fastcluster HAC and cuML DBSCAN.
//!
//! The quality-relevant algorithm (ID-Level HDC + HAC/DBSCAN over Hamming
//! distances) is identical in kind to SpecHD's; HyperSpec differs in
//! platform and in library defaults. The reimplementation uses its own
//! encoder seed and the fastcluster default (average linkage) so the two
//! tools are independent implementations, as in the paper's comparison.

use crate::{expand_to_full, ClusteringTool};
use spechd_cluster::{
    dbscan_packed, medoid_all, nn_chain, ClusterAssignment, CondensedMatrix, DbscanParams,
};
use spechd_hdc::{EncoderConfig, HvPack, IdLevelEncoder};
use spechd_ms::SpectrumDataset;
use spechd_preprocess::{PrecursorBucketer, PreprocessConfig, PreprocessPipeline};

/// Encodes the preprocessed spectra straight into a contiguous pack.
fn encode_packed(encoder: &IdLevelEncoder, dataset: &SpectrumDataset) -> HvPack {
    let peak_lists: Vec<Vec<(f64, f64)>> = dataset
        .spectra()
        .iter()
        .map(|s| s.relative_peaks())
        .collect();
    encoder.encode_batch_packed(&peak_lists)
}

fn hyperspec_encoder() -> EncoderConfig {
    EncoderConfig {
        seed: 0x4159_7E12_5EC5_0001, // independent item memories
        ..EncoderConfig::default()
    }
}

/// HyperSpec with hierarchical agglomerative clustering (the
/// "HyperSpec-HAC" flavour, via the fastcluster library in the original).
#[derive(Debug, Clone, PartialEq)]
pub struct HyperSpecHac {
    /// Cut threshold as a fraction of the hypervector dimensionality.
    pub threshold_fraction: f64,
    /// Bucketing resolution in Dalton.
    pub resolution: f64,
}

impl Default for HyperSpecHac {
    fn default() -> Self {
        Self {
            threshold_fraction: 0.32,
            resolution: 1.0,
        }
    }
}

impl ClusteringTool for HyperSpecHac {
    fn name(&self) -> &'static str {
        "HyperSpec-HAC"
    }

    fn cluster(&self, dataset: &SpectrumDataset) -> ClusterAssignment {
        let encoder = IdLevelEncoder::new(hyperspec_encoder());
        let pre = PreprocessPipeline::new(PreprocessConfig::default()).run(dataset);
        let pack = encode_packed(&encoder, &pre.dataset);
        let buckets = PrecursorBucketer::new(self.resolution).bucketize(pre.dataset.spectra());
        let threshold = self.threshold_fraction * encoder.dim() as f64;

        let mut raw = vec![0usize; pre.dataset.len()];
        let mut next = 0usize;
        for bucket in &buckets {
            if bucket.len() == 1 {
                raw[bucket.members[0]] = next;
                next += 1;
                continue;
            }
            let matrix = CondensedMatrix::from_pack(&pack.gather(&bucket.members));
            // fastcluster default: average linkage.
            let cut = nn_chain(&matrix, spechd_cluster::Linkage::Average)
                .dendrogram
                .cut(threshold);
            let _ = medoid_all(&matrix, &cut); // consensus, as HyperSpec reports
            for (&member, &label) in bucket.members.iter().zip(cut.labels()) {
                raw[member] = next + label;
            }
            next += cut.num_clusters();
        }
        let local = ClusterAssignment::from_raw_labels(&raw);
        expand_to_full(&local, &pre.kept, dataset.len())
    }
}

/// HyperSpec with DBSCAN (the "HyperSpec-DBSCAN" flavour via cuML):
/// roughly 3× faster in the paper but with visibly lower clustering
/// quality (Fig. 10), which this parameterization reproduces.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperSpecDbscan {
    /// Neighborhood radius as a fraction of the dimensionality.
    pub eps_fraction: f64,
    /// DBSCAN core-point threshold.
    pub min_pts: usize,
    /// Bucketing resolution in Dalton.
    pub resolution: f64,
}

impl Default for HyperSpecDbscan {
    fn default() -> Self {
        Self {
            eps_fraction: 0.28,
            min_pts: 2,
            resolution: 1.0,
        }
    }
}

impl ClusteringTool for HyperSpecDbscan {
    fn name(&self) -> &'static str {
        "HyperSpec-DBSCAN"
    }

    fn cluster(&self, dataset: &SpectrumDataset) -> ClusterAssignment {
        let encoder = IdLevelEncoder::new(hyperspec_encoder());
        let pre = PreprocessPipeline::new(PreprocessConfig::default()).run(dataset);
        let pack = encode_packed(&encoder, &pre.dataset);
        let buckets = PrecursorBucketer::new(self.resolution).bucketize(pre.dataset.spectra());
        let eps = self.eps_fraction * encoder.dim() as f64;

        let mut raw = vec![0usize; pre.dataset.len()];
        let mut next = 0usize;
        for bucket in &buckets {
            if bucket.len() == 1 {
                raw[bucket.members[0]] = next;
                next += 1;
                continue;
            }
            // Density query straight off the packed rows — no O(n²) matrix.
            let result = dbscan_packed(
                &pack.gather(&bucket.members),
                DbscanParams {
                    eps,
                    min_pts: self.min_pts,
                },
            );
            let assignment = result.to_assignment();
            for (&member, &label) in bucket.members.iter().zip(assignment.labels()) {
                raw[member] = next + label;
            }
            next += assignment.num_clusters();
        }
        let local = ClusterAssignment::from_raw_labels(&raw);
        expand_to_full(&local, &pre.kept, dataset.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_metrics::ClusteringEval;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn dataset(seed: u64) -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 250,
            num_peptides: 50,
            seed,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn hac_clusters_replicates() {
        let ds = dataset(1);
        let a = HyperSpecHac::default().cluster(&ds);
        let eval = ClusteringEval::compute(a.labels(), ds.labels());
        assert!(eval.clustered_ratio > 0.2, "{:.3}", eval.clustered_ratio);
        assert!(eval.incorrect_ratio < 0.1, "{:.3}", eval.incorrect_ratio);
    }

    #[test]
    fn dbscan_quality_below_hac() {
        // Fig. 10: the DBSCAN flavour "lagged in clustering quality".
        let ds = dataset(2);
        let hac = HyperSpecHac::default().cluster(&ds);
        let db = HyperSpecDbscan::default().cluster(&ds);
        let e_hac = ClusteringEval::compute(hac.labels(), ds.labels());
        let e_db = ClusteringEval::compute(db.labels(), ds.labels());
        // DBSCAN either clusters less or errs more at comparable settings.
        let hac_score = e_hac.clustered_ratio - 3.0 * e_hac.incorrect_ratio;
        let db_score = e_db.clustered_ratio - 3.0 * e_db.incorrect_ratio;
        assert!(
            hac_score >= db_score - 0.05,
            "hac {hac_score:.3} vs dbscan {db_score:.3}"
        );
    }

    #[test]
    fn deterministic() {
        let ds = dataset(3);
        assert_eq!(
            HyperSpecHac::default().cluster(&ds),
            HyperSpecHac::default().cluster(&ds)
        );
    }

    #[test]
    fn threshold_monotone() {
        let ds = dataset(4);
        let tight = HyperSpecHac {
            threshold_fraction: 0.1,
            ..Default::default()
        }
        .cluster(&ds);
        let loose = HyperSpecHac {
            threshold_fraction: 0.4,
            ..Default::default()
        }
        .cluster(&ds);
        assert!(tight.clustered_ratio() <= loose.clustered_ratio() + 1e-9);
    }
}
