//! Calibrated runtime and energy cost models of the comparison tools
//! (Figs 7–9 of the paper).
//!
//! We have neither the authors' RTX 3090 nor the tools' exact binaries, so
//! speed comparisons use analytic phase models — `load + embed + cluster` —
//! whose constants are pinned to the absolute/relative numbers the paper
//! reports (each constant's provenance is documented on the constructor).
//! Quality comparisons do **not** use these models; they run the real
//! reimplementations in this crate.
//!
//! Phases and devices:
//!
//! * **load** — file parsing + preprocessing on the host CPU (prior work
//!   \[14\] attributes "an average of 82% of the total execution time" to
//!   this stage for conventional tools).
//! * **embed** — per-spectrum vectorization/encoding/DNN inference,
//!   on GPU for HyperSpec and GLEAMS.
//! * **cluster** — the clustering stage proper.

use spechd_fpga::WorkloadShape;

/// Analytic performance/energy model of one comparison tool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToolPerfModel {
    /// Tool name as used in the figures.
    pub name: &'static str,
    /// Host-side load + preprocessing rate in bytes/second.
    pub load_bytes_per_s: f64,
    /// Per-spectrum embedding/encoding seconds.
    pub embed_s_per_spectrum: f64,
    /// Power drawn during the embed phase (GPU via nvidia-smi, or CPU via
    /// RAPL), watts.
    pub embed_power_w: f64,
    /// Per-spectrum clustering seconds.
    pub cluster_s_per_spectrum: f64,
    /// Power drawn during load and clustering phases (RAPL), watts.
    pub cpu_power_w: f64,
}

impl ToolPerfModel {
    /// HyperSpec with fastcluster HAC.
    ///
    /// Calibration: Fig. 8 gives 1000 s standalone clustering on
    /// PXD000561 (21.1M spectra) → 47.4 µs/spectrum; Fig. 7 gives 6×
    /// SpecHD end-to-end → load ≈ 0.26 GB/s once GPU encoding
    /// (~700k spectra/s) and clustering are subtracted.
    pub fn hyperspec_hac() -> Self {
        Self {
            name: "HyperSpec-HAC",
            load_bytes_per_s: 0.262e9,
            embed_s_per_spectrum: 1.43e-6,
            embed_power_w: 320.0,
            cluster_s_per_spectrum: 47.4e-6,
            cpu_power_w: 120.0,
        }
    }

    /// HyperSpec with cuML DBSCAN: §IV-D — "HyperSpec-DBSCAN demonstrated
    /// a threefold lower runtime than HyperSpec-HAC" in the clustering
    /// phase. The RAPL+SMI sum during cuML DBSCAN reads close to CPU-only
    /// levels (short bursts), hence the CPU-rate power here.
    pub fn hyperspec_dbscan() -> Self {
        Self {
            cluster_s_per_spectrum: 47.4e-6 / 3.0,
            name: "HyperSpec-DBSCAN",
            ..Self::hyperspec_hac()
        }
    }

    /// GLEAMS: Fig. 7 — 31–54× slower than SpecHD end-to-end, dominated
    /// by "extensive time spent on supervised embedding"; Fig. 8 —
    /// 14.3× SpecHD in standalone clustering (≈54 µs/spectrum). DNN
    /// inference ≈ 536 µs/spectrum closes the end-to-end gap.
    pub fn gleams() -> Self {
        Self {
            name: "GLEAMS",
            load_bytes_per_s: 0.1e9,
            embed_s_per_spectrum: 536e-6,
            embed_power_w: 320.0,
            cluster_s_per_spectrum: 54.2e-6,
            cpu_power_w: 120.0,
        }
    }

    /// Falcon: Fig. 8 — "even more pronounced against Falcon, with 100x
    /// speedup" in standalone clustering (≈379 µs/spectrum for ANN index
    /// build + DBSCAN); vectorization is cheap CPU work.
    pub fn falcon() -> Self {
        Self {
            name: "Falcon",
            load_bytes_per_s: 0.262e9,
            embed_s_per_spectrum: 2.0e-6,
            embed_power_w: 120.0,
            cluster_s_per_spectrum: 379e-6,
            cpu_power_w: 120.0,
        }
    }

    /// msCRUSH: LSH clustering sits between HyperSpec and Falcon
    /// (Fig. 7 places it mid-pack); ≈80 µs/spectrum.
    pub fn mscrush() -> Self {
        Self {
            name: "msCRUSH",
            load_bytes_per_s: 0.262e9,
            embed_s_per_spectrum: 2.0e-6,
            embed_power_w: 120.0,
            cluster_s_per_spectrum: 80e-6,
            cpu_power_w: 120.0,
        }
    }

    /// The four tools of Fig. 7, in the paper's order.
    pub fn fig7_tools() -> [ToolPerfModel; 4] {
        [
            Self::gleams(),
            Self::hyperspec_hac(),
            Self::mscrush(),
            Self::falcon(),
        ]
    }

    /// Load-phase seconds.
    pub fn load_s(&self, shape: &WorkloadShape) -> f64 {
        shape.raw_bytes as f64 / self.load_bytes_per_s
    }

    /// Embed-phase seconds.
    pub fn embed_s(&self, shape: &WorkloadShape) -> f64 {
        shape.num_spectra as f64 * self.embed_s_per_spectrum
    }

    /// Clustering-phase seconds (the Fig. 8 quantity).
    pub fn clustering_s(&self, shape: &WorkloadShape) -> f64 {
        shape.num_spectra as f64 * self.cluster_s_per_spectrum
    }

    /// End-to-end seconds (the Fig. 7 quantity).
    pub fn end_to_end_s(&self, shape: &WorkloadShape) -> f64 {
        self.load_s(shape) + self.embed_s(shape) + self.clustering_s(shape)
    }

    /// End-to-end energy in joules (RAPL for CPU phases + SMI for GPU
    /// phases, as the paper measures).
    pub fn end_to_end_energy_j(&self, shape: &WorkloadShape) -> f64 {
        (self.load_s(shape) + self.clustering_s(shape)) * self.cpu_power_w
            + self.embed_s(shape) * self.embed_power_w
    }

    /// Clustering-phase energy in joules (the Fig. 9b quantity).
    pub fn clustering_energy_j(&self, shape: &WorkloadShape) -> f64 {
        self.clustering_s(shape) * self.cpu_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_fpga::{SystemConfig, SystemModel};

    fn spechd() -> SystemModel {
        SystemModel::new(SystemConfig::default())
    }

    #[test]
    fn hyperspec_standalone_clustering_near_1000s() {
        let shape = WorkloadShape::pxd000561();
        let t = ToolPerfModel::hyperspec_hac().clustering_s(&shape);
        assert!((t - 1000.0).abs() < 10.0, "clustering {t:.0}s");
    }

    #[test]
    fn fig7_speedup_ordering_and_magnitudes() {
        // GLEAMS slowest (31-54x), HyperSpec-HAC fastest baseline (6x).
        let shape = WorkloadShape::pxd000561();
        let spechd_t = spechd().end_to_end(&shape).total_s;
        let gleams = ToolPerfModel::gleams().end_to_end_s(&shape) / spechd_t;
        let hyperspec = ToolPerfModel::hyperspec_hac().end_to_end_s(&shape) / spechd_t;
        let falcon = ToolPerfModel::falcon().end_to_end_s(&shape) / spechd_t;
        let mscrush = ToolPerfModel::mscrush().end_to_end_s(&shape) / spechd_t;
        assert!((40.0..70.0).contains(&gleams), "GLEAMS speedup {gleams:.1}");
        assert!(
            (4.0..9.0).contains(&hyperspec),
            "HyperSpec speedup {hyperspec:.1}"
        );
        assert!(gleams > falcon && falcon > mscrush && mscrush > hyperspec,
            "ordering: GLEAMS {gleams:.1} > Falcon {falcon:.1} > msCRUSH {mscrush:.1} > HyperSpec {hyperspec:.1}");
    }

    #[test]
    fn fig8_standalone_speedups() {
        let shape = WorkloadShape::pxd000561();
        let spechd_t = spechd().standalone_clustering_time(&shape);
        let hyperspec = ToolPerfModel::hyperspec_hac().clustering_s(&shape) / spechd_t;
        let gleams = ToolPerfModel::gleams().clustering_s(&shape) / spechd_t;
        let falcon = ToolPerfModel::falcon().clustering_s(&shape) / spechd_t;
        assert!(
            (8.0..20.0).contains(&hyperspec),
            "HyperSpec {hyperspec:.1} (paper 12.3x)"
        );
        assert!(
            (10.0..22.0).contains(&gleams),
            "GLEAMS {gleams:.1} (paper 14.3x)"
        );
        assert!(
            (70.0..160.0).contains(&falcon),
            "Falcon {falcon:.1} (paper ~100x)"
        );
    }

    #[test]
    fn fig9_energy_ratios() {
        let shape = WorkloadShape::pxd000561();
        let model = spechd();
        let spechd_e2e = model.end_to_end_energy(&shape).total_j;
        let spechd_cluster = model.clustering_energy(&shape);
        let hac = ToolPerfModel::hyperspec_hac();
        let db = ToolPerfModel::hyperspec_dbscan();
        let e2e_hac = hac.end_to_end_energy_j(&shape) / spechd_e2e;
        let e2e_db = db.end_to_end_energy_j(&shape) / spechd_e2e;
        let cl_hac = hac.clustering_energy_j(&shape) / spechd_cluster;
        let cl_db = db.clustering_energy_j(&shape) / spechd_cluster;
        // Paper: e2e 31x (HAC) / 14x (DBSCAN); clustering 40x / 12x.
        assert!((18.0..45.0).contains(&e2e_hac), "e2e HAC {e2e_hac:.1}");
        assert!((8.0..22.0).contains(&e2e_db), "e2e DBSCAN {e2e_db:.1}");
        assert!((25.0..60.0).contains(&cl_hac), "cluster HAC {cl_hac:.1}");
        assert!((8.0..20.0).contains(&cl_db), "cluster DBSCAN {cl_db:.1}");
        assert!(
            e2e_hac > e2e_db,
            "HAC is less efficient than DBSCAN end-to-end"
        );
        assert!(cl_hac > cl_db);
    }

    #[test]
    fn dbscan_three_times_faster_clustering() {
        let shape = WorkloadShape::pxd000561();
        let hac = ToolPerfModel::hyperspec_hac().clustering_s(&shape);
        let db = ToolPerfModel::hyperspec_dbscan().clustering_s(&shape);
        assert!((hac / db - 3.0).abs() < 0.01);
    }

    #[test]
    fn speedups_hold_across_all_table1_datasets() {
        // Fig. 7 spans all five datasets; SpecHD must win everywhere.
        for shape in WorkloadShape::table1() {
            let spechd_t = spechd().end_to_end(&shape).total_s;
            for tool in ToolPerfModel::fig7_tools() {
                let ratio = tool.end_to_end_s(&shape) / spechd_t;
                assert!(
                    ratio > 2.0,
                    "{} only {ratio:.1}x on {} spectra",
                    tool.name,
                    shape.num_spectra
                );
            }
        }
    }
}
