//! Comparator MS clustering tools (§II-B of the SpecHD paper).
//!
//! Two kinds of artifacts live here, mirroring how the paper compares:
//!
//! 1. **Quality implementations** — real Rust reimplementations of each
//!    tool's algorithmic core, all satisfying [`ClusteringTool`], run on
//!    the same labelled synthetic datasets as SpecHD to regenerate the
//!    Fig. 10 quality curves:
//!    * [`HyperSpecHac`] / [`HyperSpecDbscan`] — HDC encoding with
//!      fastcluster-style HAC or cuML-style DBSCAN (Xu et al. 2023).
//!    * [`Falcon`] — binned-vector nearest-neighbor clustering
//!      (Bittremieux et al. 2021).
//!    * [`MsCrush`] — locality-sensitive hashing + greedy merging
//!      (Wang et al. 2019).
//!    * [`MaRaCluster`] — rare-peak pairwise scores + complete-link HAC
//!      (The & Käll 2016).
//!    * [`Gleams`] — a random-projection embedding standing in for the
//!      trained DNN (Bittremieux et al. 2022), then HAC (documented
//!      substitution, DESIGN.md §2).
//!    * [`GreedyCascade`] — the spectra-cluster / MSCluster family of
//!      iterative representative-merging algorithms.
//!
//! 2. **Performance models** ([`perf`]) — analytic runtime/energy models
//!    calibrated to the numbers the paper reports for each tool (we have
//!    neither the authors' GPU nor their binaries), used for Figs 7–9.
//!
//! # Example
//!
//! ```
//! use spechd_baselines::{ClusteringTool, HyperSpecDbscan};
//! use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};
//!
//! let ds = SyntheticGenerator::new(SyntheticConfig {
//!     num_spectra: 150, num_peptides: 30, seed: 5, ..SyntheticConfig::default()
//! }).generate();
//! let tool = HyperSpecDbscan::default();
//! let assignment = tool.cluster(&ds);
//! assert_eq!(assignment.len(), ds.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cascade;
mod falcon;
mod gleams;
mod hyperspec;
mod maracluster;
mod mscrush;
pub mod perf;
pub mod vectorize;

pub use cascade::GreedyCascade;
pub use falcon::Falcon;
pub use gleams::Gleams;
pub use hyperspec::{HyperSpecDbscan, HyperSpecHac};
pub use maracluster::MaRaCluster;
pub use mscrush::MsCrush;

use spechd_cluster::ClusterAssignment;
use spechd_ms::SpectrumDataset;

/// A spectral clustering tool: takes a raw dataset, returns a flat
/// assignment over **all** input spectra (tools that discard low-quality
/// spectra must report them as singletons).
pub trait ClusteringTool {
    /// Tool name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Clusters the dataset.
    fn cluster(&self, dataset: &SpectrumDataset) -> ClusterAssignment;
}

/// Expands an assignment over a kept-subset back to the full dataset,
/// making every discarded spectrum a singleton. Shared by every tool that
/// preprocesses before clustering.
pub(crate) fn expand_to_full(
    assignment: &ClusterAssignment,
    kept: &[usize],
    full_len: usize,
) -> ClusterAssignment {
    let mut raw = vec![usize::MAX; full_len];
    for (i, &orig) in kept.iter().enumerate() {
        raw[orig] = assignment.labels()[i];
    }
    let mut next = assignment.num_clusters();
    for slot in raw.iter_mut() {
        if *slot == usize::MAX {
            *slot = next;
            next += 1;
        }
    }
    ClusterAssignment::from_raw_labels(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechd_ms::synth::{SyntheticConfig, SyntheticGenerator};

    fn dataset() -> SpectrumDataset {
        SyntheticGenerator::new(SyntheticConfig {
            num_spectra: 200,
            num_peptides: 40,
            seed: 17,
            ..SyntheticConfig::default()
        })
        .generate()
    }

    #[test]
    fn every_tool_covers_all_spectra() {
        let ds = dataset();
        let tools: Vec<Box<dyn ClusteringTool>> = vec![
            Box::new(HyperSpecHac::default()),
            Box::new(HyperSpecDbscan::default()),
            Box::new(Falcon::default()),
            Box::new(MsCrush::default()),
            Box::new(MaRaCluster::default()),
            Box::new(Gleams::default()),
            Box::new(GreedyCascade::spectra_cluster()),
            Box::new(GreedyCascade::mscluster()),
        ];
        for tool in &tools {
            let a = tool.cluster(&ds);
            assert_eq!(a.len(), ds.len(), "{}", tool.name());
            assert!(!tool.name().is_empty());
        }
    }

    #[test]
    fn tools_produce_meaningful_quality() {
        // Every baseline must beat random assignment on ICR at its default
        // settings — they are real algorithms, not stubs.
        let ds = dataset();
        let tools: Vec<Box<dyn ClusteringTool>> = vec![
            Box::new(HyperSpecHac::default()),
            Box::new(Falcon::default()),
            Box::new(MaRaCluster::default()),
            Box::new(Gleams::default()),
        ];
        for tool in &tools {
            let a = tool.cluster(&ds);
            let eval = spechd_metrics::ClusteringEval::compute(a.labels(), ds.labels());
            assert!(
                eval.clustered_ratio > 0.05,
                "{} clustered nothing ({:.3})",
                tool.name(),
                eval.clustered_ratio
            );
            assert!(
                eval.incorrect_ratio < 0.25,
                "{} ICR too high ({:.3})",
                tool.name(),
                eval.incorrect_ratio
            );
        }
    }

    #[test]
    fn expand_to_full_singleton_logic() {
        let a = ClusterAssignment::from_raw_labels(&[0, 0, 1]);
        let full = expand_to_full(&a, &[0, 2, 4], 6);
        assert_eq!(full.len(), 6);
        // 0 and 2 share a cluster; 4 is its own; 1, 3, 5 are singletons.
        assert_eq!(full.labels()[0], full.labels()[2]);
        assert_ne!(full.labels()[0], full.labels()[4]);
        assert_eq!(full.num_clusters(), 5);
    }
}
